package stats

import (
	"reflect"
	"testing"
)

func TestAddDeltaAndSub(t *testing.T) {
	before := &Run{}
	before.Core.Instructions = 100
	before.L1D.DemandMisses = 5
	before.PTW.Walks = 2

	after := &Run{}
	after.Core.Instructions = 160
	after.L1D.DemandMisses = 9
	after.PTW.Walks = 7

	excluded := &Run{}
	AddDelta(excluded, after, before)
	if excluded.Core.Instructions != 60 || excluded.L1D.DemandMisses != 4 || excluded.PTW.Walks != 5 {
		t.Fatalf("AddDelta = %+v", excluded)
	}
	// Accumulation across ramps.
	AddDelta(excluded, after, before)
	if excluded.Core.Instructions != 120 {
		t.Fatalf("second AddDelta did not accumulate: %d", excluded.Core.Instructions)
	}

	final := &Run{}
	final.Core.Instructions = 500
	final.L1D.DemandMisses = 50
	final.PTW.Walks = 20
	Sub(final, excluded)
	if final.Core.Instructions != 380 || final.L1D.DemandMisses != 42 || final.PTW.Walks != 10 {
		t.Fatalf("Sub = %+v", final)
	}
	if final.Workload != "" || final.Suite != "" {
		t.Fatal("string fields must be untouched")
	}
}

// TestDeltaCoversEveryCounter guards the reflective walk against a struct
// reshape that silently drops counters: every uint64 in a Run filled with a
// sentinel must be reached.
func TestDeltaCoversEveryCounter(t *testing.T) {
	after := &Run{}
	fillOnes(t, after)
	got := &Run{}
	AddDelta(got, after, &Run{})
	if *got != *after {
		t.Fatalf("AddDelta missed counters:\n got %+v\nwant %+v", *got, *after)
	}
}

// fillOnes sets every uint64 field of r to 1 with an independent reflective
// sweep (not walkUint64, which is under test).
func fillOnes(t *testing.T, r *Run) {
	t.Helper()
	var fill func(v reflect.Value)
	fill = func(v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				fill(v.Field(i))
			}
		case reflect.Uint64:
			v.SetUint(1)
		}
	}
	fill(reflect.ValueOf(r).Elem())
}
