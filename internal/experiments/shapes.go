package experiments

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

// ShapeCheck is one qualitative assertion from the paper, evaluated against
// a fresh run of the corresponding experiment. The shape harness turns the
// EXPERIMENTS.md reading guide into executable checks.
type ShapeCheck struct {
	Name   string
	Claim  string
	Pass   bool
	Detail string
}

// ShapeReport is the outcome of a shape run.
type ShapeReport struct {
	Checks []ShapeCheck
}

// Passed counts passing checks.
func (r *ShapeReport) Passed() (pass, total int) {
	for _, c := range r.Checks {
		if c.Pass {
			pass++
		}
	}
	return pass, len(r.Checks)
}

// Print writes the report.
func (r *ShapeReport) Print(w io.Writer) {
	pass, total := r.Passed()
	fmt.Fprintf(w, "Shape checks: %d/%d pass\n", pass, total)
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %-22s %s (%s)\n", mark, c.Name, c.Claim, c.Detail)
	}
}

// VerifyShapes runs the core qualitative claims of the paper at the given
// scale and reports which hold. It is the programmatic companion to
// EXPERIMENTS.md: run it after any simulator change to see which paper
// shapes survived.
func VerifyShapes(o Options, wls []trace.Workload) (*ShapeReport, error) {
	o = o.withDefaults()
	if wls == nil {
		wls = Sample(trace.Seen(), o.MaxWorkloads)
	}
	rep := &ShapeReport{}
	add := func(name, claim string, pass bool, detail string) {
		rep.Checks = append(rep.Checks, ShapeCheck{Name: name, Claim: claim, Pass: pass, Detail: detail})
	}

	// One matrix covers most checks.
	m, err := RunMatrix(o, wls, []Scenario{
		scenarioDiscard(), scenarioPermit(), scenarioDripper(),
	})
	if err != nil {
		return nil, err
	}

	// Fig. 2 shape: Permit helps some workloads and hurts others.
	sp, _, err := m.Speedups("Permit PGC", "Discard PGC", wls)
	if err != nil {
		return nil, err
	}
	minSp, maxSp := sp[0], sp[0]
	for _, x := range sp {
		if x < minSp {
			minSp = x
		}
		if x > maxSp {
			maxSp = x
		}
	}
	add("fig2-spread", "Permit helps some workloads and hurts others",
		minSp < 1 && maxSp > 1, fmt.Sprintf("min %s max %s", pct(minSp), pct(maxSp)))

	// Fig. 9/10 shape: DRIPPER >= Permit in geomean.
	gPermit, err := m.Geomean("Permit PGC", "Discard PGC", wls)
	if err != nil {
		return nil, err
	}
	gDripper, err := m.Geomean("DRIPPER", "Discard PGC", wls)
	if err != nil {
		return nil, err
	}
	add("fig9-dripper-vs-permit", "DRIPPER beats Permit PGC in geomean",
		gDripper >= gPermit, fmt.Sprintf("DRIPPER %s vs Permit %s", pct(gDripper), pct(gPermit)))

	// Fig. 11 shape: DRIPPER keeps coverage while improving accuracy.
	var covP, covD, accP, accD float64
	for _, w := range wls {
		base := m["Discard PGC"][w.Name]
		p, d := m["Permit PGC"][w.Name], m["DRIPPER"][w.Name]
		covP += coverageOf(p, base)
		covD += coverageOf(d, base)
		accP += p.L1D.PrefetchAccuracy() - base.L1D.PrefetchAccuracy()
		accD += d.L1D.PrefetchAccuracy() - base.L1D.PrefetchAccuracy()
	}
	n := float64(len(wls))
	add("fig11-accuracy", "DRIPPER's accuracy delta beats Permit's",
		accD/n >= accP/n-0.005,
		fmt.Sprintf("DRIPPER %+.2f%% vs Permit %+.2f%%", accD/n*100, accP/n*100))
	add("fig11-coverage", "DRIPPER keeps most of Permit's coverage",
		covD/n >= covP/n*0.5,
		fmt.Sprintf("DRIPPER %+.2f%% vs Permit %+.2f%%", covD/n*100, covP/n*100))

	// Fig. 13 shape: DRIPPER issues far fewer useless page-cross prefetches.
	var uselessP, uselessD float64
	for _, w := range wls {
		_, up := m["Permit PGC"][w.Name].PGCPerKiloInstr()
		_, ud := m["DRIPPER"][w.Name].PGCPerKiloInstr()
		uselessP += up
		uselessD += ud
	}
	add("fig13-useless", "DRIPPER cuts useless page-cross prefetches",
		uselessD <= uselessP,
		fmt.Sprintf("DRIPPER %.2f vs Permit %.2f useless/kinstr (mean)", uselessD/n, uselessP/n))

	// Fig. 12 shape: DRIPPER reduces dTLB MPKI at least as much as sTLB.
	var dtlbD, stlbD float64
	for _, w := range wls {
		base := m["Discard PGC"][w.Name]
		d := m["DRIPPER"][w.Name]
		dtlbD += d.MPKI("dtlb") - base.MPKI("dtlb")
		stlbD += d.MPKI("stlb") - base.MPKI("stlb")
	}
	add("fig12-tlb", "DRIPPER reduces TLB MPKIs (dTLB at least as much as sTLB)",
		dtlbD/n <= 0.01 && dtlbD <= stlbD+0.01*n,
		fmt.Sprintf("dTLB %+.3f sTLB %+.3f mean ΔMPKI", dtlbD/n, stlbD/n))

	return rep, nil
}

func coverageOf(run, base interface {
	MPKI(string) float64
}, // structural: *stats.Run satisfies it
) float64 {
	b := base.MPKI("l1d")
	if b == 0 {
		return 0
	}
	return (b - run.MPKI("l1d")) / b
}
