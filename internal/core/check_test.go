package core

import (
	"strings"
	"testing"
)

func newCheckedFilter(t *testing.T) *Filter {
	t.Helper()
	f, err := NewFilter(DefaultDripperConfig("berti"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCheckBounds(t *testing.T) {
	if err := newCheckedFilter(t).CheckBounds(); err != nil {
		t.Fatalf("fresh filter violates: %v", err)
	}

	cases := []struct {
		mutate func(f *Filter)
		want   string
	}{
		{func(f *Filter) { f.tables[0].weights[3] = f.tables[0].max + 1 }, "filter-weight-bounds:"},
		{func(f *Filter) { f.sysWts[0].value = f.sysWts[0].max + 1 }, "filter-counter-bounds:"},
		{func(f *Filter) { f.level = len(f.levels) }, "filter-threshold-range:"},
		{func(f *Filter) {
			f.vub.entries[0] = ubEntry{key: 0x42, valid: true}
			f.vub.entries[1] = ubEntry{key: 0x42, valid: true}
		}, "filter-vUB-duplicate-key:"},
		{func(f *Filter) { f.FalseNegativeHits = f.PositiveTrainings + 1 }, "filter-training-count:"},
	}
	for _, tc := range cases {
		f := newCheckedFilter(t)
		tc.mutate(f)
		if err := f.CheckBounds(); err == nil || !strings.HasPrefix(err.Error(), tc.want) {
			t.Errorf("CheckBounds = %v, want %s", err, tc.want)
		}
	}
}

func TestUpdateBufferCheckBounds(t *testing.T) {
	b := NewUpdateBuffer(4)
	for i := uint64(0); i < 9; i++ {
		b.Insert(i, Tag{})
	}
	if err := b.checkBounds(); err != nil {
		t.Fatalf("buffer after wrap violates: %v", err)
	}
}
