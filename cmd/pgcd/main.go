// Command pgcd is the page-crossing simulation daemon: a long-running
// HTTP/JSON service that admits campaign specs, runs them on a bounded
// multi-tenant job queue, and serves memoized results from the shared
// content-addressed cache.
//
//	pgcd -listen :8437 -state /var/lib/pgcd -cache /var/cache/pgc
//
// Submit a campaign, then poll it:
//
//	curl -s localhost:8437/v1/campaigns -d '{"cells":[{"id":"c0","workload":"stream_s00"}]}'
//	curl -s localhost:8437/v1/campaigns/<id>
//	curl -s localhost:8437/v1/campaigns/<id>/result
//
// On SIGTERM (or SIGINT) the daemon drains: it stops admitting, gives
// in-flight campaigns a grace period, checkpoints the rest to resume
// manifests, and exits 0. A second signal skips the drain and exits 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/daemon"
)

func main() {
	// When spawned as a campaign worker (-backend procs re-executes this
	// binary), serve cells over stdio and exit before touching flags.
	campaign.MaybeWorker()
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pgcd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:8437", "address to serve the HTTP API on")
		stateDir   = flag.String("state", "pgcd-state", "directory for job records and resume manifests")
		cacheDir   = flag.String("cache", "", "content-addressed result cache directory (empty: no cache)")
		workers    = flag.Int("workers", 0, "campaign worker-pool width per job (0: NumCPU)")
		jobs       = flag.Int("jobs", 0, "jobs running concurrently (0: default)")
		queueDepth = flag.Int("queue", 0, "max queued jobs before 429 backpressure (0: default)")
		quota      = flag.Int("quota", 0, "max active jobs per client (0: default)")
		rate       = flag.Float64("rate", 0, "per-client request rate limit, tokens/sec (0: default)")
		burst      = flag.Int("burst", 0, "per-client rate-limit burst (0: default)")
		maxCells   = flag.Int("max-cells", 0, "max cells per campaign (0: default)")
		warmup     = flag.Uint64("warmup", 0, "default warmup instructions per cell (0: default)")
		instrs     = flag.Uint64("instrs", 0, "default measured instructions per cell (0: default)")
		deadline   = flag.Duration("deadline", 0, "default per-campaign deadline (0: default)")
		drainGrace = flag.Duration("drain-grace", 0, "grace period for in-flight jobs on drain (0: default)")
		backend    = flag.String("backend", "local", "execution backend for campaign cells: local (in-process pool) or procs[:N] (worker subprocesses sharing the cache)")
	)
	flag.Parse()

	cfg := daemon.DefaultConfig(*stateDir)
	cfg.CacheDir = *cacheDir
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *jobs > 0 {
		cfg.JobConcurrency = *jobs
	}
	if *queueDepth > 0 {
		cfg.QueueDepth = *queueDepth
	}
	if *quota > 0 {
		cfg.MaxJobsPerClient = *quota
	}
	if *rate > 0 {
		cfg.RatePerSec = *rate
	}
	if *burst > 0 {
		cfg.Burst = *burst
	}
	if *maxCells > 0 {
		cfg.MaxCells = *maxCells
	}
	if *warmup > 0 {
		cfg.DefaultWarmup = *warmup
	}
	if *instrs > 0 {
		cfg.DefaultInstrs = *instrs
	}
	if *deadline > 0 {
		cfg.DefaultDeadline = *deadline
	}
	if *drainGrace > 0 {
		cfg.DrainGrace = *drainGrace
	}
	// The backend outlives every job: pgcd closes it after the drain, once
	// nothing can still be executing on it.
	bk, err := campaign.ParseBackend(*backend, cfg.Workers)
	if err != nil {
		return err
	}
	if bk != nil {
		defer bk.Close()
		cfg.Backend = bk
	}

	srv, err := daemon.Open(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("pgcd: serving on http://%s (state %s)\n", ln.Addr(), *stateDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// First signal drains gracefully; a second one means the operator has
	// lost patience — signal.NotifyContext would swallow it, so watch the
	// channel directly and hard-exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case sig := <-sigs:
		fmt.Printf("pgcd: %s: draining (second signal exits immediately)\n", sig)
	}
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "pgcd: second signal: exiting without drain")
		os.Exit(130)
	}()

	// Stop admitting before stopping listening, so in-flight requests see
	// 503 draining rather than connection resets.
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainGrace+30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		hs.Close()
	}
	fmt.Println("pgcd: drained; unfinished campaigns are checkpointed for resume")
	return nil
}
