package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

// tinyOpts keeps test runs fast: a few workloads, small budgets.
func tinyOpts() Options {
	return Options{Warmup: 20_000, Instrs: 40_000, MaxWorkloads: 8}
}

// tinySet returns a small diverse workload set including both friendly and
// hostile families.
func tinySet(t *testing.T) []trace.Workload {
	t.Helper()
	var out []trace.Workload
	want := []string{"spec.stream_s00", "spec.stream_s01", "spec.pagehop_s00",
		"spec.pagehop_s01", "gap.graph_s00", "qmm_int.qmm_s00"}
	for _, name := range want {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		out = append(out, w)
	}
	return out
}

func TestSample(t *testing.T) {
	ws := trace.Seen()
	s := Sample(ws, 10)
	if len(s) != 10 {
		t.Fatalf("sampled %d", len(s))
	}
	if len(Sample(ws, 0)) != len(ws) {
		t.Fatal("n=0 should return all")
	}
	if len(Sample(ws, 10_000)) != len(ws) {
		t.Fatal("n>len should return all")
	}
	suites := map[string]bool{}
	for _, w := range Sample(ws, 30) {
		suites[w.Suite] = true
	}
	if len(suites) < 4 {
		t.Fatalf("sampling lost suite diversity: %v", suites)
	}
}

func TestRunMatrixAndGeomean(t *testing.T) {
	wls := tinySet(t)[:2]
	m, err := RunMatrix(tinyOpts(), wls, []Scenario{scenarioDiscard(), scenarioPermit()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Geomean("Permit PGC", "Discard PGC", wls)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Fatalf("geomean %g", g)
	}
	if _, err := m.Geomean("nope", "Discard PGC", wls); err == nil {
		t.Fatal("missing scenario accepted")
	}
}

func TestFig2ShowsBothSides(t *testing.T) {
	// The motivation result: Permit helps some workloads and hurts others.
	r, err := Fig2(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	min, max := r.Spread("berti")
	if !(min < 1.0) {
		t.Errorf("berti: no workload hurt by Permit (min %.3f); Fig 2's spread is missing", min)
	}
	if !(max > 1.0) {
		t.Errorf("berti: no workload helped by Permit (max %.3f)", max)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Fatal("print missing header")
	}
}

func TestFig3AccuracyIsMiddling(t *testing.T) {
	// The paper: ~50% of page-cross prefetches are useful on average —
	// i.e. neither ~0 nor ~1 across the board.
	r, err := Fig3(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	avg := r.AvgUseful["berti"]
	if avg <= 0.05 || avg >= 0.99 {
		t.Errorf("berti average useful fraction %.2f; expected an intermediate value", avg)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "berti") {
		t.Fatal("print missing series")
	}
}

func TestFig4SplitsCategories(t *testing.T) {
	r, err := Fig4(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Helped+r.Hurt != len(tinySet(t)) {
		t.Fatalf("categories don't partition: %d+%d", r.Helped, r.Hurt)
	}
	// Where Permit wins, it should reduce dTLB MPKI on average (Fig. 4a).
	if r.Helped > 0 && r.Mean("helped", "dtlb") > 0 {
		t.Errorf("helped dTLB MPKI delta %+.3f, expected <= 0", r.Mean("helped", "dtlb"))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "4a") {
		t.Fatal("print missing panels")
	}
}

func TestFig9DripperCompetitive(t *testing.T) {
	r, err := Fig9(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range []string{"berti", "bop", "ipcp"} {
		d := r.Geomeans[pf]["DRIPPER"]
		p := r.Geomeans[pf]["Permit PGC"]
		if d <= 0 || p <= 0 {
			t.Fatalf("%s: zero geomeans", pf)
		}
		// DRIPPER must not be substantially worse than the best static
		// policy; the paper's claim (DRIPPER strictly best) is asserted on
		// the larger nightly runs in EXPERIMENTS.md, not on 6 workloads.
		best := p
		if 1 > best {
			best = 1
		}
		if d < best*0.97 {
			t.Errorf("%s: DRIPPER %.3f far below best static %.3f", pf, d, best)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	for _, s := range []string{"Permit PGC", "Discard PTW", "ISO Storage", "PPF", "DRIPPER"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("print missing scenario %s", s)
		}
	}
}

func TestFig10SCurveAndSuites(t *testing.T) {
	r, err := Fig10(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SCurve["DRIPPER"]) != len(tinySet(t)) {
		t.Fatal("s-curve size mismatch")
	}
	// Ascending order.
	curve := r.SCurve["DRIPPER"]
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("s-curve not sorted")
		}
	}
	if len(r.Suites) == 0 || r.Overall["DRIPPER"] <= 0 {
		t.Fatal("missing aggregates")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "per-suite") {
		t.Fatal("print missing suite breakdown")
	}
}

func TestFig11DripperAccuracyBeatsPermit(t *testing.T) {
	r, err := Fig11(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 11 bottom: DRIPPER's accuracy delta exceeds
	// Permit's (Permit pollutes, DRIPPER filters).
	if r.OverallAccuracy["DRIPPER"] < r.OverallAccuracy["Permit PGC"]-0.02 {
		t.Errorf("DRIPPER accuracy delta %.3f below Permit %.3f",
			r.OverallAccuracy["DRIPPER"], r.OverallAccuracy["Permit PGC"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "coverage") {
		t.Fatal("print missing coverage")
	}
}

func TestFig12Fig13Shapes(t *testing.T) {
	r12, err := Fig12(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"Permit PGC", "DRIPPER"} {
		for _, st := range Fig4Structures {
			if len(r12.Curves[sc][st]) != len(tinySet(t)) {
				t.Fatalf("%s/%s curve missing", sc, st)
			}
		}
	}
	r13, err := Fig13(tinyOpts(), tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	// DRIPPER's useless PKI must not exceed Permit's (it filters).
	if r13.MedianUseless["DRIPPER"] > r13.MedianUseless["Permit PGC"]+0.5 {
		t.Errorf("DRIPPER useless PKI median %.2f above Permit %.2f",
			r13.MedianUseless["DRIPPER"], r13.MedianUseless["Permit PGC"])
	}
	var buf bytes.Buffer
	r12.Print(&buf)
	r13.Print(&buf)
	if !strings.Contains(buf.String(), "Fig. 12") || !strings.Contains(buf.String(), "Fig. 13") {
		t.Fatal("prints missing headers")
	}
}

func TestFig14Fig15Run(t *testing.T) {
	wls := tinySet(t)[:3]
	r14, err := Fig14(tinyOpts(), wls)
	if err != nil {
		t.Fatal(err)
	}
	if len(r14.Scenarios) != 4 { // DRIPPER + 3 single-feature filters
		t.Fatalf("scenarios: %v", r14.Scenarios)
	}
	r15, err := Fig15(tinyOpts(), wls)
	if err != nil {
		t.Fatal(err)
	}
	if r15.GeomeanDripper <= 0 || r15.GeomeanSF <= 0 {
		t.Fatal("missing geomeans")
	}
	var buf bytes.Buffer
	r14.Print(&buf)
	r15.Print(&buf)
	if !strings.Contains(buf.String(), "DRIPPER-SF") {
		t.Fatal("print missing DRIPPER-SF")
	}
}

func TestFig16LargePages(t *testing.T) {
	r, err := Fig16(tinyOpts(), tinySet(t)[:3])
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"Permit PGC", "DRIPPER(filter@2MB)", "DRIPPER"} {
		if r.Geomean[sc] <= 0 {
			t.Fatalf("scenario %s missing", sc)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "2MB") {
		t.Fatal("print missing")
	}
}

func TestFig17L2CPrefetchers(t *testing.T) {
	r, err := Fig17(tinyOpts(), tinySet(t)[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.L2CPrefetchers) != 4 {
		t.Fatalf("L2C prefetchers: %v", r.L2CPrefetchers)
	}
	for _, l2 := range r.L2CPrefetchers {
		if r.Geomean[l2]["DRIPPER"] <= 0 {
			t.Fatalf("missing geomean for l2=%s", l2)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "spp") {
		t.Fatal("print missing spp row")
	}
}

func TestFig18UnseenRuns(t *testing.T) {
	unseen := Sample(trace.Unseen(), 4)
	r, err := Fig18(tinyOpts(), unseen)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SCurve["DRIPPER"]) != len(unseen) {
		t.Fatal("unseen s-curve missing")
	}
}

func TestTable5Runs(t *testing.T) {
	o := tinyOpts()
	o.MaxWorkloads = 3
	r, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"seen", "unseen", "all"} {
		if r.Geomean[set]["DRIPPER"] <= 0 {
			t.Fatalf("set %s missing", set)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Table V") {
		t.Fatal("print missing header")
	}
}

func TestFig19SmallScale(t *testing.T) {
	o := tinyOpts()
	o.Warmup, o.Instrs = 5_000, 10_000
	r, err := Fig19(o, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WeightedSpeedups["DRIPPER"]) != 2 {
		t.Fatalf("mixes: %d", len(r.WeightedSpeedups["DRIPPER"]))
	}
	for _, ws := range r.WeightedSpeedups["DRIPPER"] {
		if ws <= 0 {
			t.Fatalf("weighted speedup %g", ws)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "2-core") {
		t.Fatal("print missing header")
	}
}

func TestTable2Selection(t *testing.T) {
	o := tinyOpts()
	o.Warmup, o.Instrs = 10_000, 20_000
	// Narrow candidate pool and one prefetcher to keep the test quick.
	r, err := Table2(o, tinySet(t)[:2], []string{"Delta", "PC", "sTLB MPKI"}, []string{"berti"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Selected["berti"]) == 0 {
		t.Fatal("no features selected")
	}
	if len(r.Ranking["berti"]) != 3 {
		t.Fatalf("ranking: %v", r.Ranking["berti"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("print missing header")
	}
}

func TestTable3Storage(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalKB < 1.39 || r.TotalKB > 1.45 {
		t.Fatalf("total %.3f KB, want ~1.42", r.TotalKB)
	}
	sum := 0.0
	for _, v := range r.Rows {
		sum += v
	}
	if sum < r.TotalKB-0.01 || sum > r.TotalKB+0.01 {
		t.Fatalf("rows sum %.4f != total %.4f", sum, r.TotalKB)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "pUB") {
		t.Fatal("print missing rows")
	}
}

func TestSortByGain(t *testing.T) {
	names := sortByGain([]string{"a", "b", "c"}, []float64{3, 1, 2})
	if names[0] != "b" || names[1] != "c" || names[2] != "a" {
		t.Fatalf("sorted: %v", names)
	}
}

func TestAblationSweeps(t *testing.T) {
	o := tinyOpts()
	o.Warmup, o.Instrs = 10_000, 20_000
	wls := tinySet(t)[:2]
	for name, fn := range map[string]func(Options, []trace.Workload) (*SweepResult, error){
		"epoch":  EpochSweep,
		"stlb":   STLBSweep,
		"degree": DegreeSweep,
		"vub":    VUBSweep,
	} {
		r, err := fn(o, wls)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Points) < 3 {
			t.Fatalf("%s: %d points", name, len(r.Points))
		}
		for _, p := range r.Points {
			if p.Geomean <= 0 {
				t.Fatalf("%s/%s: geomean %g", name, p.Label, p.Geomean)
			}
		}
		var buf bytes.Buffer
		r.Print(&buf)
		if !strings.Contains(buf.String(), "Ablation") {
			t.Fatalf("%s: print missing title", name)
		}
	}
}

func TestVerifyShapes(t *testing.T) {
	o := tinyOpts()
	o.Warmup, o.Instrs = 20_000, 40_000
	rep, err := VerifyShapes(o, tinySet(t))
	if err != nil {
		t.Fatal(err)
	}
	pass, total := rep.Passed()
	if total < 5 {
		t.Fatalf("only %d checks", total)
	}
	// On the curated tiny set every core shape must hold.
	if pass != total {
		var buf bytes.Buffer
		rep.Print(&buf)
		t.Fatalf("shape checks failed:\n%s", buf.String())
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "fig9-dripper-vs-permit") {
		t.Fatal("print missing check names")
	}
}
