// Package sample implements interval-sampled simulation: short measured
// intervals of detailed execution separated by functional-warmup gaps in
// which architectural warm state (TLBs, caches, page-structure caches,
// replacement metadata) tracks the skipped instructions while core timing
// is skipped entirely. The technique follows the functional-warmup sampling
// literature (see PAPERS.md, "Memory Access Vectors"): because the paper's
// page-cross results live in the memory system, preserving memory-system
// state across gaps is what keeps the sampled error small.
//
// The package is deliberately simulator-agnostic: it knows how to plan
// deterministic sampling schedules (Plan) and how to drive a functional
// warmer over a trace (Warmer); the sim package supplies the warm
// operations and the detailed intervals.
package sample

import "fmt"

// Default sampling parameters. Chosen empirically on the bundled workload
// families: 2k-instruction measured intervals with a 1k-instruction
// detailed ramp keep geomean IPC error under 1% (see internal/sim's
// sampled-accuracy suite).
//
// The period defaults to auto-scaling: sampling error is governed by the
// NUMBER of measured intervals, not their density, so the default plan
// holds DefaultTargetIntervals periods across the run (floored at
// DefaultMinPeriodInstrs so short runs stay densely sampled). The detailed
// fraction — and with it the speedup — then improves with the budget
// instead of being fixed at a short-run density.
const (
	DefaultIntervalInstrs  = 2000
	DefaultRampInstrs      = 1000
	DefaultTargetIntervals = 32
	DefaultMinPeriodInstrs = 32000
)

// Config selects and sizes interval sampling. The zero value disables
// sampling (full detailed simulation).
type Config struct {
	// Enabled turns interval sampling on.
	Enabled bool `json:"enabled,omitempty"`
	// IntervalInstrs is the length of each measured interval in retired
	// instructions. 0 means DefaultIntervalInstrs.
	IntervalInstrs uint64 `json:"interval_instrs,omitempty"`
	// PeriodInstrs is the sampling period: each period of the instruction
	// stream contains one ramp+interval, placed at a seed-derived offset.
	// 0 means auto: the period is sized so the run holds
	// DefaultTargetIntervals periods (see PeriodFor).
	PeriodInstrs uint64 `json:"period_instrs,omitempty"`
	// RampInstrs is the detailed-warmup ramp preceding each measured
	// interval: executed in full detail to re-warm fine-grained timing
	// state (MSHRs, in-flight walks, branch history) but excluded from the
	// measured statistics. 0 means DefaultRampInstrs.
	RampInstrs uint64 `json:"ramp_instrs,omitempty"`
	// Seed drives interval placement. 0 means derive from the workload
	// (its config seed, or a hash of its name), so that a given workload
	// always samples the same intervals regardless of process, host or
	// GOMAXPROCS.
	Seed uint64 `json:"seed,omitempty"`
}

// WithDefaults returns the config with zero-valued parameters replaced by
// the package defaults. PeriodInstrs is left untouched: 0 means auto and
// is resolved against a concrete budget by PeriodFor. Disabled configs
// pass through untouched so the zero Config stays the identity element in
// content-addressed cache keys.
func (c Config) WithDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.IntervalInstrs == 0 {
		c.IntervalInstrs = DefaultIntervalInstrs
	}
	if c.RampInstrs == 0 {
		c.RampInstrs = DefaultRampInstrs
	}
	return c
}

// PeriodFor resolves the sampling period for a run of total instructions.
// An explicit PeriodInstrs wins. The auto period (PeriodInstrs == 0) sizes
// the run to DefaultTargetIntervals periods, floored at
// DefaultMinPeriodInstrs (short runs sample densely) and never below one
// ramp+interval (degenerate budgets stay schedulable).
func (c Config) PeriodFor(total uint64) uint64 {
	c = c.WithDefaults()
	if c.PeriodInstrs != 0 {
		return c.PeriodInstrs
	}
	per := total / DefaultTargetIntervals
	if per < DefaultMinPeriodInstrs {
		per = DefaultMinPeriodInstrs
	}
	if min := c.IntervalInstrs + c.RampInstrs; per < min {
		per = min
	}
	return per
}

// Validate checks structural parameters (after WithDefaults).
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	c = c.WithDefaults()
	if c.IntervalInstrs == 0 {
		return fmt.Errorf("sample: interval length must be positive")
	}
	if c.PeriodInstrs != 0 && c.PeriodInstrs < c.IntervalInstrs+c.RampInstrs {
		return fmt.Errorf("sample: period %d shorter than ramp %d + interval %d",
			c.PeriodInstrs, c.RampInstrs, c.IntervalInstrs)
	}
	return nil
}

// DetailedFraction returns the fraction of a total-instruction run executed
// in detail ((ramp+interval)/period), the first-order cost model of a
// sampled run.
func (c Config) DetailedFraction(total uint64) float64 {
	if !c.Enabled {
		return 1
	}
	c = c.WithDefaults()
	return float64(c.RampInstrs+c.IntervalInstrs) / float64(c.PeriodFor(total))
}
