package daemon

import (
	"repro/internal/campaign"
	"repro/internal/metrics"
)

// daemonMetrics is the daemon's control-plane instrumentation, registered
// in one internal/metrics registry and served (snapshot or stream) by the
// /metricz endpoint. All counters are SyncCounters — unlike a simulated
// system, the daemon mutates its registry from many goroutines. Gauges are
// function-backed reads of live server state, sampled at snapshot time.
type daemonMetrics struct {
	reg *metrics.Registry

	submitted   *metrics.SyncCounter
	completed   *metrics.SyncCounter
	failed      *metrics.SyncCounter
	canceled    *metrics.SyncCounter
	interrupted *metrics.SyncCounter
	recovered   *metrics.SyncCounter
	warmServed  *metrics.SyncCounter

	rejRate     *metrics.SyncCounter
	rejQuota    *metrics.SyncCounter
	rejQueue    *metrics.SyncCounter
	rejDraining *metrics.SyncCounter
	rejInvalid  *metrics.SyncCounter

	httpRequests *metrics.SyncCounter

	cellsSimulated *metrics.SyncCounter
	cellsCached    *metrics.SyncCounter
	cellsResumed   *metrics.SyncCounter
	cellsFailed    *metrics.SyncCounter

	// Backend-stream counters, fed by the campaign event stream: cell
	// retry attempts and backend worker churn (subprocess spawns/deaths
	// under a proc backend; always zero under the in-process pool).
	cellsRetried  *metrics.SyncCounter
	workersJoined *metrics.SyncCounter
	workersDied   *metrics.SyncCounter
}

// newDaemonMetrics registers every daemon metric. Registration happens once
// at server construction, before any concurrent access — the registry map
// is read-only from then on, which is the registry's concurrency contract.
func newDaemonMetrics(s *Server) *daemonMetrics {
	reg := metrics.NewRegistry()
	m := &daemonMetrics{
		reg:         reg,
		submitted:   reg.SyncCounter("daemon.jobs.submitted"),
		completed:   reg.SyncCounter("daemon.jobs.completed"),
		failed:      reg.SyncCounter("daemon.jobs.failed"),
		canceled:    reg.SyncCounter("daemon.jobs.canceled"),
		interrupted: reg.SyncCounter("daemon.jobs.interrupted"),
		recovered:   reg.SyncCounter("daemon.jobs.recovered"),
		warmServed:  reg.SyncCounter("daemon.jobs.warm_served"),

		rejRate:     reg.SyncCounter("daemon.rejected.rate_limited"),
		rejQuota:    reg.SyncCounter("daemon.rejected.quota"),
		rejQueue:    reg.SyncCounter("daemon.rejected.queue_full"),
		rejDraining: reg.SyncCounter("daemon.rejected.draining"),
		rejInvalid:  reg.SyncCounter("daemon.rejected.invalid"),

		httpRequests: reg.SyncCounter("daemon.http.requests"),

		cellsSimulated: reg.SyncCounter("daemon.cells.simulated"),
		cellsCached:    reg.SyncCounter("daemon.cells.cache_hits"),
		cellsResumed:   reg.SyncCounter("daemon.cells.resumed"),
		cellsFailed:    reg.SyncCounter("daemon.cells.failed"),

		cellsRetried:  reg.SyncCounter("daemon.cells.retried"),
		workersJoined: reg.SyncCounter("daemon.backend.workers_joined"),
		workersDied:   reg.SyncCounter("daemon.backend.workers_died"),
	}
	reg.GaugeFunc("daemon.queue.depth", func() uint64 { return uint64(s.queueDepth()) })
	reg.GaugeFunc("daemon.jobs.running", func() uint64 { return uint64(s.runningCount()) })
	reg.GaugeFunc("daemon.draining", func() uint64 {
		if s.isDraining() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("daemon.ratelimit.clients", func() uint64 { return uint64(s.limiter.clients()) })
	return m
}

// addReport folds one campaign report's cell accounting into the counters.
func (m *daemonMetrics) addReport(simulated, cached, resumed, failed int) {
	m.cellsSimulated.Add(uint64(simulated))
	m.cellsCached.Add(uint64(cached))
	m.cellsResumed.Add(uint64(resumed))
	m.cellsFailed.Add(uint64(failed))
}

// onEvent folds one campaign event into the counters. Installed on every
// job's engine via WithEvents; the stream is already serialised per
// campaign and the counters are sync, so concurrent jobs compose.
func (m *daemonMetrics) onEvent(ev campaign.Event) {
	switch ev.Kind {
	case campaign.EventCellRetried:
		m.cellsRetried.Inc()
	case campaign.EventWorkerJoined:
		m.workersJoined.Inc()
	case campaign.EventWorkerDied:
		m.workersDied.Inc()
	}
}
