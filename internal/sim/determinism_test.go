package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// snapshotBytes runs one golden workload on a fresh system and returns the
// serialised metrics snapshot.
func snapshotBytes(t *testing.T, name string) []byte {
	t.Helper()
	return runGolden(t, goldenConfig(), name)
}

// TestSnapshotDeterminism locks the property the golden suite depends on:
// two back-to-back runs of the same seed and configuration produce
// byte-identical snapshots.
func TestSnapshotDeterminism(t *testing.T) {
	for _, name := range goldenWorkloads {
		t.Run(name, func(t *testing.T) {
			a := snapshotBytes(t, name)
			b := snapshotBytes(t, name)
			if !bytes.Equal(a, b) {
				t.Fatalf("back-to-back runs of %s diverged", name)
			}
		})
	}
}

// TestSnapshotDeterminismAcrossPolicies covers the policies with internal
// state (the DRIPPER filter's perceptron and threshold ladder, PPF's
// converted tables): state-carrying policies must be just as reproducible as
// the stateless ones.
func TestSnapshotDeterminismAcrossPolicies(t *testing.T) {
	w, ok := trace.ByName("spec.pagehop_s00")
	if !ok {
		t.Fatal("workload missing")
	}
	for _, pol := range []PolicyKind{PolicyPermit, PolicyDiscardPTW, PolicyDripper, PolicyPPFDthr} {
		t.Run(string(pol), func(t *testing.T) {
			run := func() []byte {
				cfg := goldenConfig()
				cfg.Policy = pol
				reader, err := w.NewReader()
				if err != nil {
					t.Fatal(err)
				}
				_, sys, err := RunTraceSystem(context.Background(), cfg, w.Name, w.Suite, reader)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := sys.Snapshot().WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			if !bytes.Equal(run(), run()) {
				t.Fatalf("policy %s runs diverged", pol)
			}
		})
	}
}

// TestTracerDeterminism: with the tracer enabled, the retained event
// sequence itself must be reproducible (events carry cycles and addresses,
// both deterministic).
func TestTracerDeterminism(t *testing.T) {
	w, ok := trace.ByName("spec.pagehop_s00")
	if !ok {
		t.Fatal("workload missing")
	}
	run := func() []byte {
		cfg := goldenConfig()
		cfg.TraceCapacity = 4096
		reader, err := w.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		_, sys, err := RunTraceSystem(context.Background(), cfg, w.Name, w.Suite, reader)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sys.Tracer.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		if sys.Tracer.Total() == 0 {
			t.Fatal("tracer recorded no events on a page-hopping workload")
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("event traces diverged between identical runs")
	}
}

// TestTracerNoObserverEffect: enabling the tracer must not change the
// simulation's results — observability is read-only.
func TestTracerNoObserverEffect(t *testing.T) {
	w, ok := trace.ByName("spec.pagehop_s00")
	if !ok {
		t.Fatal("workload missing")
	}
	run := func(traceCap int) *stats.Run {
		cfg := goldenConfig()
		cfg.TraceCapacity = traceCap
		reader, err := w.NewReader()
		if err != nil {
			t.Fatal(err)
		}
		r, _, err := RunTraceSystem(context.Background(), cfg, w.Name, w.Suite, reader)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain, traced := run(0), run(4096)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing perturbed the run:\nuntraced: %+v\ntraced:   %+v", plain, traced)
	}
}
