package trace

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string {
	return filepath.Join("testdata", "champsim", name)
}

// readAll drains a reader through Next.
func readAll(r Reader) []Instr {
	var out []Instr
	for {
		in, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

func TestChampSimExpansion(t *testing.T) {
	ip := uint64(0x400000)
	recs := []ChampSimRecord{
		{IP: ip},                                        // plain op
		{IP: ip + 4, SrcMem: [4]uint64{0x1000}},         // load
		{IP: ip + 8, DstMem: [2]uint64{0x2000}},         // store
		{IP: ip + 12, IsBranch: 1, BranchTaken: 1},      // taken: target = next IP
		{IP: ip + 64, IsBranch: 1, BranchTaken: 0},      // not taken: target = IP+4
		{IP: ip + 68, SrcMem: [4]uint64{0x3000, 0x3040}, // multi-operand
			DstMem: [2]uint64{0x4000}},
		{IP: ip + 72, IsBranch: 1, BranchTaken: 1}, // last record: fallback IP+4
	}
	var buf bytes.Buffer
	if err := WriteChampSim(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChampSim(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Instr{
		{PC: ip, Kind: Op},
		{PC: ip + 4, Kind: Load, Addr: 0x1000},
		{PC: ip + 8, Kind: Store, Addr: 0x2000},
		{PC: ip + 12, Kind: Branch, Addr: ip + 64, Taken: true},
		{PC: ip + 64, Kind: Branch, Addr: ip + 68, Taken: false},
		{PC: ip + 68, Kind: Load, Addr: 0x3000},
		{PC: ip + 68, Kind: Load, Addr: 0x3040},
		{PC: ip + 68, Kind: Store, Addr: 0x4000},
		{PC: ip + 72, Kind: Branch, Addr: ip + 76, Taken: true},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d instrs, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestChampSimFixtureDecodes(t *testing.T) {
	raw, err := os.ReadFile(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw)%ChampSimRecordSize != 0 {
		t.Fatalf("fixture is %d bytes, not a whole number of %d-byte records",
			len(raw), ChampSimRecordSize)
	}
	instrs, err := DecodeChampSim(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrs) < len(raw)/ChampSimRecordSize {
		t.Fatalf("expansion shrank: %d instrs from %d records",
			len(instrs), len(raw)/ChampSimRecordSize)
	}
	// The taken branch mid-trace must target the following record's IP.
	for i, in := range instrs {
		if in.Kind == Branch && in.Taken && i+1 < len(instrs) {
			if in.Addr == 0 {
				t.Fatalf("instr %d: taken branch with zero target", i)
			}
		}
	}
}

func TestChampSimTruncatedFixtureTypedError(t *testing.T) {
	// The committed fixture ends mid-record: decoding must return the typed
	// *ChampSimError promptly (not hang, not succeed, not panic), with the
	// offset of the torn record.
	raw, err := os.ReadFile(fixture("truncated.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeChampSim(bytes.NewReader(raw), 0)
	var cse *ChampSimError
	if !errors.As(err, &cse) {
		t.Fatalf("error is %T (%v), want *ChampSimError", err, err)
	}
	if cse.Offset != int64(len(raw)) {
		t.Errorf("error offset %d, want %d (end of torn record)", cse.Offset, len(raw))
	}
	if !strings.Contains(cse.Error(), "truncated record") {
		t.Errorf("error message %q lacks the truncation diagnosis", cse.Error())
	}

	// The streaming reader surfaces the same failure through Err after the
	// stream ends.
	r, err := OpenChampSim(fixture("truncated.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	instrs := readAll(r)
	if r.Err() == nil {
		t.Fatal("streaming reader swallowed the truncation")
	}
	if !errors.As(r.Err(), &cse) {
		t.Fatalf("streaming error is %T, want *ChampSimError", r.Err())
	}
	// The two whole records before the tear still decode.
	if len(instrs) == 0 {
		t.Fatal("whole records before the tear were dropped")
	}
}

func TestChampSimResetReplaysIdentically(t *testing.T) {
	r, err := OpenChampSim(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	first := readAll(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	r.Reset()
	second := readAll(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("instr %d differs across Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestChampSimNextBatchMatchesNext(t *testing.T) {
	a, err := OpenChampSim(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenChampSim(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	viaNext := readAll(a)
	var viaBatch []Instr
	for {
		batch := b.NextBatch(3)
		if len(batch) == 0 {
			break
		}
		viaBatch = append(viaBatch, batch...)
	}
	if len(viaNext) != len(viaBatch) {
		t.Fatalf("Next saw %d instrs, NextBatch %d", len(viaNext), len(viaBatch))
	}
	for i := range viaNext {
		if viaNext[i] != viaBatch[i] {
			t.Fatalf("instr %d differs: %+v vs %+v", i, viaNext[i], viaBatch[i])
		}
	}
}

func TestChampSimGzip(t *testing.T) {
	raw, err := os.ReadFile(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(t.TempDir(), "small.champsim.gz")
	f, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	plain, err := DecodeChampSim(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenChampSim(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	unzipped := readAll(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(plain) != len(unzipped) {
		t.Fatalf("gzip path decoded %d instrs, raw %d", len(unzipped), len(plain))
	}
	for i := range plain {
		if plain[i] != unzipped[i] {
			t.Fatalf("instr %d differs through gzip: %+v vs %+v", i, plain[i], unzipped[i])
		}
	}
}

func TestChampSimXZRejected(t *testing.T) {
	_, err := OpenChampSim("some/trace.champsimtrace.xz")
	if err == nil || !strings.Contains(err.Error(), "xz") {
		t.Fatalf("xz framing must be rejected with guidance, got: %v", err)
	}
	// LoadChampSim rejects it before touching the filesystem state beyond
	// the open, too.
	xz := filepath.Join(t.TempDir(), "t.champsimtrace.xz")
	if err := os.WriteFile(xz, []byte{0xfd, '7', 'z', 'X', 'Z', 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChampSim(xz); err == nil || !strings.Contains(err.Error(), "xz") {
		t.Fatalf("LoadChampSim must reject xz, got: %v", err)
	}
}

func TestLoadChampSimWorkload(t *testing.T) {
	w, err := LoadChampSim(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "champsim.valid_small" || w.Suite != "champsim" {
		t.Fatalf("identity: %+v", w)
	}
	if w.Source == nil || w.Source.Format != "champsim" || len(w.Source.SHA256) != 64 {
		t.Fatalf("source: %+v", w.Source)
	}
	r, err := w.NewReader()
	if err != nil {
		t.Fatal(err)
	}
	if cs, ok := r.(*ChampSimReader); ok {
		defer cs.Close()
	}
	if got := readAll(r); len(got) == 0 {
		t.Fatal("workload reader produced no instructions")
	}

	// Same bytes elsewhere → same content hash; different bytes → different.
	copyPath := filepath.Join(t.TempDir(), "copy.champsim")
	raw, err := os.ReadFile(fixture("valid_small.champsim"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := LoadChampSim(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Source.SHA256 != w.Source.SHA256 {
		t.Fatal("identical bytes hashed differently")
	}
	mutated := append([]byte(nil), raw...)
	mutated[0] ^= 0xFF
	mutPath := filepath.Join(t.TempDir(), "mut.champsim")
	if err := os.WriteFile(mutPath, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	w3, err := LoadChampSim(mutPath)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Source.SHA256 == w.Source.SHA256 {
		t.Fatal("different bytes share a content hash")
	}
}

func TestLoadChampSimEmpty(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.champsim")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChampSim(empty); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty trace must be rejected at load, got: %v", err)
	}
}

func TestChampSimStem(t *testing.T) {
	for in, want := range map[string]string{
		"600.perlbench_s-210B.champsimtrace.xz": "600.perlbench_s-210B",
		"/a/b/bc-0.trace.gz":                    "bc-0",
		"plain.champsim":                        "plain",
		"noext":                                 "noext",
	} {
		if got := champSimStem(in); got != want {
			t.Errorf("champSimStem(%q) = %q, want %q", in, got, want)
		}
	}
}
