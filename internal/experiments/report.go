package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Printer is implemented by every experiment result: it writes the paper's
// rows/series as text.
type Printer interface {
	Print(w io.Writer)
}

// WriteJSON serialises any experiment result as indented JSON, for
// downstream plotting. The result structs export all their series, so the
// default encoding is the full dataset.
func WriteJSON(w io.Writer, experiment string, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	payload := struct {
		Experiment string `json:"experiment"`
		Result     any    `json:"result"`
	}{experiment, result}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("experiments: encoding %s: %w", experiment, err)
	}
	return nil
}

// Report renders a result as text or JSON depending on asJSON.
func Report(w io.Writer, experiment string, result Printer, asJSON bool) error {
	if asJSON {
		return WriteJSON(w, experiment, result)
	}
	result.Print(w)
	return nil
}
