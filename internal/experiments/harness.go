// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-C and §V). Each experiment is a function that runs the
// required (workload × scenario) matrix on the simulator and returns a
// result struct that both prints the paper's rows/series and exposes the
// numbers for tests to assert the paper's qualitative shape.
//
// All experiments accept Options so the same code scales from unit-test
// budgets (a handful of workloads, tens of thousands of instructions) to
// full runs (the complete 218/178-workload sets).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options scales an experiment.
type Options struct {
	// Warmup and Instrs are the per-workload instruction budgets.
	Warmup, Instrs uint64
	// MaxWorkloads caps the workload set (evenly sampled to keep suite
	// diversity); 0 means the full set.
	MaxWorkloads int
	// Parallel is the number of concurrent simulations (default NumCPU).
	Parallel int
	// Prefetcher is the L1D prefetcher under study (default "berti").
	Prefetcher string
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 100_000
	}
	if o.Instrs == 0 {
		o.Instrs = 100_000
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Prefetcher == "" {
		o.Prefetcher = "berti"
	}
	return o
}

// baseConfig builds the simulator configuration for the options.
func baseConfig(o Options) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = o.Warmup
	cfg.SimInstrs = o.Instrs
	cfg.L1DPrefetcher = o.Prefetcher
	return cfg
}

// Sample returns up to n workloads evenly spaced across ws (preserving the
// suite ordering, hence diversity); n <= 0 returns ws unchanged.
func Sample(ws []trace.Workload, n int) []trace.Workload {
	if n <= 0 || n >= len(ws) {
		return ws
	}
	out := make([]trace.Workload, 0, n)
	step := float64(len(ws)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, ws[int(float64(i)*step)])
	}
	return out
}

// Scenario is one column of an evaluation matrix: a named mutation of the
// base configuration.
type Scenario struct {
	Name      string
	Configure func(cfg *sim.Config)
}

// The standard §V-A scenarios.
func scenarioPermit() Scenario {
	return Scenario{"Permit PGC", func(c *sim.Config) { c.Policy = sim.PolicyPermit }}
}
func scenarioDiscard() Scenario {
	return Scenario{"Discard PGC", func(c *sim.Config) { c.Policy = sim.PolicyDiscard }}
}
func scenarioDiscardPTW() Scenario {
	return Scenario{"Discard PTW", func(c *sim.Config) { c.Policy = sim.PolicyDiscardPTW }}
}
func scenarioISO() Scenario {
	return Scenario{"ISO Storage", func(c *sim.Config) { c.ISOStorage = true }}
}
func scenarioPPF() Scenario {
	return Scenario{"PPF", func(c *sim.Config) { c.Policy = sim.PolicyPPF }}
}
func scenarioPPFDthr() Scenario {
	return Scenario{"PPF+Dthr", func(c *sim.Config) { c.Policy = sim.PolicyPPFDthr }}
}
func scenarioDripper() Scenario {
	return Scenario{"DRIPPER", func(c *sim.Config) { c.Policy = sim.PolicyDripper }}
}

// Matrix holds runs indexed by scenario name then workload name.
type Matrix map[string]map[string]*stats.Run

// RunMatrix simulates every workload under every scenario, in parallel.
func RunMatrix(o Options, wls []trace.Workload, scens []Scenario) (Matrix, error) {
	o = o.withDefaults()
	type job struct {
		scen Scenario
		wl   trace.Workload
	}
	jobs := make(chan job)
	type res struct {
		scen, wl string
		run      *stats.Run
		err      error
	}
	results := make(chan res)

	var wg sync.WaitGroup
	for i := 0; i < o.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := baseConfig(o)
				j.scen.Configure(&cfg)
				run, err := sim.RunWorkload(cfg, j.wl)
				results <- res{j.scen.Name, j.wl.Name, run, err}
			}
		}()
	}
	go func() {
		for _, sc := range scens {
			for _, wl := range wls {
				jobs <- job{sc, wl}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	m := Matrix{}
	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %s/%s: %w", r.scen, r.wl, r.err)
			}
			continue
		}
		if m[r.scen] == nil {
			m[r.scen] = map[string]*stats.Run{}
		}
		m[r.scen][r.wl] = r.run
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// Speedups returns the per-workload IPC speedups of scenario over base,
// ordered like wls, along with the matching weights.
func (m Matrix) Speedups(scen, base string, wls []trace.Workload) (sp, weights []float64, err error) {
	s, b := m[scen], m[base]
	if s == nil || b == nil {
		return nil, nil, fmt.Errorf("experiments: scenario %q or %q missing", scen, base)
	}
	for _, w := range wls {
		rs, rb := s[w.Name], b[w.Name]
		if rs == nil || rb == nil {
			return nil, nil, fmt.Errorf("experiments: run missing for %s", w.Name)
		}
		sp = append(sp, stats.Speedup(rs, rb))
		weights = append(weights, w.Weight)
	}
	return sp, weights, nil
}

// Geomean returns the weighted geomean speedup of scen over base.
func (m Matrix) Geomean(scen, base string, wls []trace.Workload) (float64, error) {
	sp, w, err := m.Speedups(scen, base, wls)
	if err != nil {
		return 0, err
	}
	return stats.WeightedGeomean(sp, w)
}

// bySuite groups workloads by suite name, sorted.
func bySuite(wls []trace.Workload) (suites []string, groups map[string][]trace.Workload) {
	groups = map[string][]trace.Workload{}
	for _, w := range wls {
		groups[w.Suite] = append(groups[w.Suite], w)
	}
	for s := range groups {
		suites = append(suites, s)
	}
	sort.Strings(suites)
	return suites, groups
}

// sortedCopy returns xs ascending without mutating the input.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// pct formats a speedup as a percentage gain.
func pct(speedup float64) string {
	return fmt.Sprintf("%+.2f%%", (speedup-1)*100)
}
