package campaign

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wdl"
)

// DaemonBackend executes cells on a running pgcd daemon over its
// HTTP/JSON wire, turning daemon instances into shard executors. Each
// cell attempt becomes one single-cell campaign submission with a
// client-generated idempotency key, so transport retries attach to the
// in-flight job instead of duplicating work — and the daemon's own
// content-addressed cache deduplicates across clients for free.
//
// The daemon wire is name-based: cells must be single-core, generator
// backed (no external trace files — the daemon has no access to this
// machine's paths) and free of fault injection (the daemon rejects it).
// Registry workloads travel by name; anything else is shipped as an
// inline WDL body, the same canonical form `tracegen -emit-wdl` prints.
//
// These request/response mirrors are declared here rather than imported:
// internal/daemon imports this package, so the client half of the wire
// cannot import the server half back.
type DaemonBackend struct {
	base   string
	client *http.Client

	// joined tracks whether the daemon is currently counted as a live
	// worker, so the event stream sees joined/died transitions rather
	// than one event per HTTP exchange.
	mu     sync.Mutex
	joined bool
}

// daemonPollWait is how long each status-bearing submit blocks server-side
// (the daemon caps it at its MaxWait); between polls we lean on this
// instead of a client-side sleep so warm cells return in one round trip.
const daemonPollWait = 2 * time.Second

// NewDaemonBackend builds a backend driving the daemon at addr
// (host:port or a full http(s) URL).
func NewDaemonBackend(addr string) *DaemonBackend {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &DaemonBackend{
		base:   strings.TrimRight(addr, "/"),
		client: &http.Client{},
	}
}

// Close releases idle connections; the daemon itself is not ours to stop.
func (b *DaemonBackend) Close() error {
	b.client.CloseIdleConnections()
	return nil
}

// The daemon wire mirrors (field subset, same JSON tags as internal/daemon).
type daemonCellSpec struct {
	ID       string          `json:"id"`
	Workload string          `json:"workload,omitempty"`
	WDL      string          `json:"wdl,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
}

type daemonSubmit struct {
	ID     string           `json:"id,omitempty"`
	Name   string           `json:"name,omitempty"`
	Cells  []daemonCellSpec `json:"cells"`
	WaitMS int64            `json:"wait_ms,omitempty"`
}

type daemonFailure struct {
	Cell     string `json:"cell"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

type daemonResult struct {
	Runs     map[string][]*stats.Run `json:"runs"`
	Failures []daemonFailure         `json:"failures,omitempty"`
}

type daemonJob struct {
	ID     string        `json:"id"`
	State  string        `json:"state"`
	Error  string        `json:"error,omitempty"`
	Result *daemonResult `json:"result,omitempty"`
}

// ExecuteCell implements Backend.
func (b *DaemonBackend) ExecuteCell(ctx context.Context, c *Cell, emit EventSink) ([]*stats.Run, error) {
	spec, err := daemonSpecOf(c)
	if err != nil {
		return nil, err // unshippable cell: non-retryable, ledgered
	}
	jobID, err := randomJobID()
	if err != nil {
		return nil, fatalErrorf("campaign: daemon backend: %v", err)
	}
	body, err := json.Marshal(daemonSubmit{
		ID: jobID, Name: "cell:" + c.ID,
		Cells:  []daemonCellSpec{spec},
		WaitMS: daemonPollWait.Milliseconds(),
	})
	if err != nil {
		return nil, fatalErrorf("campaign: daemon backend encoding cell %s: %v", c.ID, err)
	}
	// Submit, then keep re-submitting the same job ID: the daemon treats a
	// known ID as "attach and wait", so this loop is simultaneously the
	// retry for transient transport errors and the poll for long cells.
	for {
		job, err := b.submit(ctx, body)
		if err != nil {
			b.markDied(emit, err)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		b.markJoined(emit)
		switch job.State {
		case "", "queued", "running":
			if err := sleepCtx(ctx, 50*time.Millisecond); err != nil {
				return nil, err
			}
			continue
		case "done":
			if job.Result == nil || len(job.Result.Runs[c.ID]) == 0 {
				return nil, retryableErrorf("campaign: daemon job %s done without runs for cell %s", job.ID, c.ID)
			}
			return job.Result.Runs[c.ID], nil
		case "failed":
			if job.Result != nil {
				for _, f := range job.Result.Failures {
					if f.Cell == c.ID {
						return nil, fatalErrorf("%s", f.Error)
					}
				}
			}
			return nil, fatalErrorf("campaign: daemon job %s failed: %s", job.ID, job.Error)
		case "canceled", "interrupted":
			// The daemon was drained or the job canceled out from under us;
			// a retry resubmits (warm manifest/cache make that cheap).
			return nil, retryableErrorf("campaign: daemon job %s was %s", job.ID, job.State)
		default:
			return nil, retryableErrorf("campaign: daemon job %s in unknown state %q", job.ID, job.State)
		}
	}
}

// submit posts one campaign request and decodes the job envelope.
// Backpressure (429/503 with Retry-After) is honoured inside: admission
// pushback is flow control, not a failure of the cell.
func (b *DaemonBackend) submit(ctx context.Context, body []byte) (*daemonJob, error) {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/campaigns", bytes.NewReader(body))
		if err != nil {
			return nil, fatalErrorf("campaign: daemon backend: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := b.client.Do(req)
		if err != nil {
			return nil, retryableErrorf("campaign: daemon %s unreachable: %v", b.base, err)
		}
		payload, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			return nil, retryableErrorf("campaign: reading daemon response: %v", rerr)
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			var job daemonJob
			if err := json.Unmarshal(payload, &job); err != nil {
				return nil, retryableErrorf("campaign: corrupt daemon response: %v", err)
			}
			return &job, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			if err := sleepCtx(ctx, retryAfterOf(resp, time.Second)); err != nil {
				return nil, err
			}
			continue
		case resp.StatusCode >= 500:
			return nil, retryableErrorf("campaign: daemon returned %d: %s", resp.StatusCode, truncated(payload))
		default:
			return nil, fatalErrorf("campaign: daemon rejected cell: %d: %s", resp.StatusCode, truncated(payload))
		}
	}
}

// daemonSpecOf lowers a cell to the daemon's wire form, rejecting what the
// wire cannot express.
func daemonSpecOf(c *Cell) (daemonCellSpec, error) {
	if c.isMix() {
		return daemonCellSpec{}, fatalErrorf("campaign: daemon backend cannot run multi-core cell %s (wire is single-core)", c.ID)
	}
	if c.Workload.Source != nil {
		return daemonCellSpec{}, fatalErrorf("campaign: daemon backend cannot ship cell %s: external trace files are local to this machine", c.ID)
	}
	if c.Config.FaultInject != nil {
		return daemonCellSpec{}, fatalErrorf("campaign: daemon backend cannot ship cell %s: the daemon rejects fault injection", c.ID)
	}
	cfg, err := json.Marshal(c.Config)
	if err != nil {
		return daemonCellSpec{}, fatalErrorf("campaign: encoding config of cell %s: %v", c.ID, err)
	}
	spec := daemonCellSpec{ID: c.ID, Config: cfg}
	// Registry workloads travel by name; a workload the daemon would
	// resolve differently (or not at all) ships as canonical WDL instead.
	if reg, ok := trace.ByName(c.Workload.Name); ok && reflect.DeepEqual(reg, c.Workload) {
		spec.Workload = c.Workload.Name
	} else {
		spec.WDL = string(wdl.Format(c.Workload))
	}
	return spec, nil
}

// markJoined / markDied translate connection-state transitions into
// worker lifecycle events: the daemon is one (remote) worker.
func (b *DaemonBackend) markJoined(emit EventSink) {
	b.mu.Lock()
	first := !b.joined
	b.joined = true
	b.mu.Unlock()
	if first && emit != nil {
		emit(Event{Kind: EventWorkerJoined, Worker: b.base})
	}
}

func (b *DaemonBackend) markDied(emit EventSink, cause error) {
	b.mu.Lock()
	was := b.joined
	b.joined = false
	b.mu.Unlock()
	if was && emit != nil {
		emit(Event{Kind: EventWorkerDied, Worker: b.base, Err: cause.Error()})
	}
}

// retryAfterOf reads a Retry-After header in seconds, with a default.
func retryAfterOf(resp *http.Response, def time.Duration) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return def
}

// sleepCtx sleeps d or returns the context error, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// truncated clips an error body for messages.
func truncated(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}

// randomJobID generates the client-side idempotency key for one cell
// attempt (the daemon alphabet is [A-Za-z0-9._-]).
func randomJobID() (string, error) {
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("generating job id: %w", err)
	}
	return "bk-" + hex.EncodeToString(buf[:]), nil
}
