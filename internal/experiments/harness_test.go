package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/trace"
)

// poisonOpts keeps degraded-matrix tests fast under -race.
func poisonOpts() Options {
	return Options{Warmup: 5_000, Instrs: 10_000}
}

// poisonedWorkload clones a real workload under a sentinel name; the
// Configure hook arms the fault injector for it only.
func poisonedWorkload(t *testing.T) trace.Workload {
	t.Helper()
	w, ok := trace.ByName("spec.stream_s00")
	if !ok {
		t.Fatal("workload spec.stream_s00 missing")
	}
	w.Name = "spec.poisoned"
	return w
}

// sevenScenarios is the full §V-A scenario column set.
func sevenScenarios() []Scenario {
	return []Scenario{
		scenarioPermit(), scenarioDiscard(), scenarioDiscardPTW(),
		scenarioISO(), scenarioPPF(), scenarioPPFDthr(), scenarioDripper(),
	}
}

// TestDegradedMatrixSurvivesPoisonedWorkload is the acceptance scenario: a
// 7-scenario matrix with one workload whose trace decoder panics must still
// return every other (scenario, workload) pair plus an explicit ledger.
func TestDegradedMatrixSurvivesPoisonedWorkload(t *testing.T) {
	good := tinySet(t)[:2]
	poisoned := poisonedWorkload(t)
	wls := append(append([]trace.Workload{}, good...), poisoned)
	scens := sevenScenarios()

	o := poisonOpts()
	o.Configure = func(cfg *sim.Config, scenario string, wl trace.Workload) {
		if wl.Name == poisoned.Name {
			cfg.FaultInject = faultinject.New(faultinject.Config{PanicAtRecord: 1_000})
		}
	}

	rep, err := RunMatrixCtx(context.Background(), o, wls, scens)
	if err != nil {
		t.Fatalf("campaign-level error: %v", err)
	}
	if rep.Complete() {
		t.Fatal("report claims completeness despite a poisoned workload")
	}
	if rep.Total != len(scens)*len(wls) {
		t.Fatalf("total = %d", rep.Total)
	}

	// Every non-poisoned pair completed.
	for _, sc := range scens {
		runs := rep.Matrix[sc.Name]
		if runs == nil {
			t.Fatalf("scenario %s missing entirely", sc.Name)
		}
		for _, w := range good {
			if runs[w.Name] == nil {
				t.Fatalf("run %s/%s missing", sc.Name, w.Name)
			}
		}
		if runs[poisoned.Name] != nil {
			t.Fatalf("poisoned run %s/%s present", sc.Name, poisoned.Name)
		}
	}

	// The ledger lists exactly the poisoned pairs, as recovered panics.
	if len(rep.Failures) != len(scens) {
		t.Fatalf("ledger has %d entries, want %d: %+v", len(rep.Failures), len(scens), rep.Failures)
	}
	for _, f := range rep.Failures {
		if f.Workload != poisoned.Name {
			t.Fatalf("unexpected failure %s/%s: %v", f.Scenario, f.Workload, f.Err)
		}
		var re *sim.RunError
		if !errors.As(f.Err, &re) || !re.Panicked {
			t.Fatalf("failure %s/%s is not a recovered panic: %v", f.Scenario, f.Workload, f.Err)
		}
	}
	if fw := rep.FailedWorkloads(); len(fw) != 1 || fw[0] != poisoned.Name {
		t.Fatalf("failed workloads = %v", fw)
	}
	if rep.Err() == nil {
		t.Fatal("aggregated error missing")
	}

	// Degraded reductions: the strict accessor names the missing pair, the
	// Available accessors compute over the survivors.
	if _, _, err := rep.Matrix.Speedups("Permit PGC", "Discard PGC", wls); err == nil {
		t.Fatal("strict Speedups accepted a degraded matrix")
	} else if !strings.Contains(err.Error(), poisoned.Name) {
		t.Fatalf("strict Speedups error does not name the missing pair: %v", err)
	}
	sp, weights, missing := rep.Matrix.SpeedupsAvailable("Permit PGC", "Discard PGC", wls)
	if len(sp) != len(good) || len(weights) != len(good) {
		t.Fatalf("surviving speedups = %d, want %d", len(sp), len(good))
	}
	if len(missing) != 1 || missing[0] != poisoned.Name {
		t.Fatalf("missing = %v", missing)
	}
	g, missing, err := rep.Matrix.GeomeanAvailable("Permit PGC", "Discard PGC", wls)
	if err != nil {
		t.Fatalf("degraded geomean: %v", err)
	}
	if g <= 0 {
		t.Fatalf("degraded geomean = %g", g)
	}
	if len(missing) != 1 {
		t.Fatalf("geomean missing = %v", missing)
	}
}

// TestRunMatrixReturnsPartialOnError pins the satellite fix: the one-shot
// wrapper must return the completed portion alongside the aggregated error.
func TestRunMatrixReturnsPartialOnError(t *testing.T) {
	good := tinySet(t)[:1]
	poisoned := poisonedWorkload(t)
	wls := append(append([]trace.Workload{}, good...), poisoned)

	o := poisonOpts()
	o.Configure = func(cfg *sim.Config, scenario string, wl trace.Workload) {
		if wl.Name == poisoned.Name {
			cfg.FaultInject = faultinject.New(faultinject.Config{PanicAtRecord: 1_000})
		}
	}
	m, err := RunMatrix(o, wls, []Scenario{scenarioDiscard(), scenarioPermit()})
	if err == nil {
		t.Fatal("poisoned matrix returned no error")
	}
	if m == nil {
		t.Fatal("completed portion dropped")
	}
	for _, sc := range []string{"Discard PGC", "Permit PGC"} {
		if m[sc][good[0].Name] == nil {
			t.Fatalf("completed run %s/%s dropped", sc, good[0].Name)
		}
	}
}

func TestRunMatrixCtxCancellationIsPrompt(t *testing.T) {
	wls := tinySet(t)
	o := Options{Warmup: 0, Instrs: 2_000_000_000, Campaign: []campaign.Option{campaign.WithWorkers(2)}}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := RunMatrixCtx(ctx, o, wls, sevenScenarios())
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("report missing on cancellation")
	}
	// Teardown is bounded by the watchdog poll grain (microseconds of
	// simulated work per check), not the multi-minute instruction budget;
	// 5s is hundreds of poll intervals of slack for a loaded CI machine.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// Cancelled runs are not individual failures.
	for _, f := range rep.Failures {
		t.Fatalf("cancellation produced ledger entry %s/%s: %v", f.Scenario, f.Workload, f.Err)
	}
}

func TestRunMatrixRetriesTransientFailures(t *testing.T) {
	wls := tinySet(t)[:1]
	inj := faultinject.New(faultinject.Config{FailAttempts: 2})
	o := poisonOpts()
	o.Campaign = append(o.Campaign, campaign.WithRetries(3, time.Millisecond))
	o.Configure = func(cfg *sim.Config, scenario string, wl trace.Workload) {
		cfg.FaultInject = inj
	}
	rep, err := RunMatrixCtx(context.Background(), o, wls, []Scenario{scenarioDiscard()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("transient failures not absorbed: %+v", rep.Failures)
	}
	if rep.Matrix["Discard PGC"][wls[0].Name] == nil {
		t.Fatal("run missing after retries")
	}
	if inj.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + 1 success)", inj.Attempts())
	}
}

func TestRunMatrixDoesNotRetryDeterministicStalls(t *testing.T) {
	wls := tinySet(t)[:1]
	inj := faultinject.New(faultinject.Config{StallRetireAfter: 2_000})
	o := poisonOpts()
	o.Campaign = append(o.Campaign, campaign.WithRetries(5, time.Millisecond))
	o.Watchdog = sim.WatchdogConfig{NoRetireBound: 20_000, PollEvery: 1_000}
	o.Configure = func(cfg *sim.Config, scenario string, wl trace.Workload) {
		cfg.FaultInject = inj
	}
	rep, err := RunMatrixCtx(context.Background(), o, wls, []Scenario{scenarioDiscard()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %+v", rep.Failures)
	}
	f := rep.Failures[0]
	if f.Attempts != 1 {
		t.Fatalf("deterministic stall retried %d times", f.Attempts)
	}
	var stall *sim.StallError
	if !errors.As(f.Err, &stall) {
		t.Fatalf("ledger error %v is not a StallError", f.Err)
	}
}

// TestMatrixLedgersCheckViolations pins the checker/ledger integration: an
// injected MSHR leak on one workload of a checked matrix must land in the
// failure ledger as a RunError with stage "check" wrapping a *sim.CheckError
// — never as a generic recovered panic — for both FailFast (panic unwind)
// and accumulate (returned error) modes, and CheckFailures must isolate
// exactly those entries.
func TestMatrixLedgersCheckViolations(t *testing.T) {
	for _, failFast := range []bool{false, true} {
		name := "accumulate"
		if failFast {
			name = "failfast"
		}
		t.Run(name, func(t *testing.T) {
			good := tinySet(t)[:1]
			leaky := poisonedWorkload(t)
			wls := append(append([]trace.Workload{}, good...), leaky)

			o := poisonOpts()
			o.Check = sim.CheckConfig{Enabled: true, FailFast: failFast}
			o.Configure = func(cfg *sim.Config, scenario string, wl trace.Workload) {
				if wl.Name == leaky.Name {
					cfg.FaultInject = faultinject.New(faultinject.Config{MSHRLeakEveryN: 20})
				}
			}

			rep, err := RunMatrixCtx(context.Background(), o, wls, []Scenario{scenarioDiscard(), scenarioDripper()})
			if err != nil {
				t.Fatalf("campaign-level error: %v", err)
			}
			// Healthy pairs completed under full checking.
			for _, sc := range []string{"Discard PGC", "DRIPPER"} {
				if rep.Matrix[sc][good[0].Name] == nil {
					t.Fatalf("checked run %s/%s missing", sc, good[0].Name)
				}
			}
			cf := rep.CheckFailures()
			if len(cf) != 2 || len(cf) != len(rep.Failures) {
				t.Fatalf("check failures = %d of %d ledger entries, want 2 of 2: %+v",
					len(cf), len(rep.Failures), rep.Failures)
			}
			for _, f := range cf {
				if f.Workload != leaky.Name {
					t.Fatalf("unexpected check failure %s/%s: %v", f.Scenario, f.Workload, f.Err)
				}
				var re *sim.RunError
				if !errors.As(f.Err, &re) || re.Stage != "check" || re.Panicked {
					t.Fatalf("failure %s/%s not ledgered as a non-panic check stage: %+v",
						f.Scenario, f.Workload, re)
				}
				ce := sim.CheckFailure(f.Err)
				if ce == nil || ce.First().Invariant != "mshr-leak" {
					t.Fatalf("failure %s/%s lost the violation detail: %v", f.Scenario, f.Workload, f.Err)
				}
				if sim.Retryable(f.Err) {
					t.Fatal("an invariant violation must not be retried")
				}
			}
		})
	}
}
