workload spec.stream_s00 {
	suite spec
	weight 0.4217480976908116
	seed 0x80D515DDD19AE560
	compute_per_mem 5
	store_frac 0.030228236636144157
	code_pages 2

	stream {
		stride_lines 2
		footprint_pages 14981
		weight 2
	}

	stream {
		stride_lines 3
		footprint_pages 3439
	}
}
