// Package cache implements the set-associative, write-back caches of the
// simulated 3-level hierarchy (L1I, L1D, L2C, LLC).
//
// Timing model. The simulator resolves every access synchronously through
// the hierarchy and returns the cycle at which data becomes available; cache
// state (fills, evictions, LRU) updates immediately. MSHRs bound the number
// of outstanding misses per level and model prefetch timeliness: a demand
// access that reaches a line whose fill is still in flight merges into the
// MSHR and completes when the fill completes, so a late prefetch still saves
// part of the miss latency — exactly the effect the paper's timeliness
// discussion depends on.
//
// Every block carries a prefetch bit and the paper's Page-Cross Bit (PCB,
// §III-C2), and the cache exposes fill/eviction/demand-hit hooks so the
// page-cross filter can train on L1D events without the cache knowing the
// filter exists.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Level is anything that can serve a physical-address access: a lower cache
// or the DRAM controller.
type Level interface {
	// Access performs the access at the given cycle and returns the cycle
	// at which the data is available to the requester.
	Access(req *Request, cycle uint64) (ready uint64)
}

// Request is the physical-side request travelling down the hierarchy.
type Request struct {
	PA   mem.PAddr
	VA   mem.VAddr // valid at the L1s (virtually-indexed levels); informational below
	PC   mem.VAddr
	Type mem.AccessType

	// Prefetch metadata, used by the L1D hooks.
	IsPageCross bool
	FilterTag   uint64
	Delta       int64
}

// Block is one cache line's metadata.
type Block struct {
	valid     bool
	dirty     bool
	pa        mem.PAddr // line-aligned physical address
	tag       uint64
	issue     uint64 // cycle the fill request was issued
	ready     uint64 // fill-completion cycle
	prefetch  bool   // filled by a prefetch, cleared design-wise never (stat kept until evict)
	pageCross bool   // the paper's PCB bit
	servedHit bool   // served >=1 demand access since fill
	filterTag uint64 // page-cross filter tag carried from the prefetch
}

// EvictInfo describes an evicted block to the eviction hook.
type EvictInfo struct {
	PA        mem.PAddr
	Prefetch  bool
	PageCross bool
	ServedHit bool
	FilterTag uint64
	Dirty     bool
}

// HitInfo describes a demand hit to the demand-hit hook.
type HitInfo struct {
	PA        mem.PAddr
	VA        mem.VAddr
	PC        mem.VAddr
	Prefetch  bool
	PageCross bool
	FilterTag uint64
	// FirstHit is true when this is the first demand access the block
	// serves since it was filled.
	FirstHit bool
}

// ReplPolicy selects the replacement policy of a cache level.
type ReplPolicy string

// The supported replacement policies.
const (
	// ReplLRU is true least-recently-used (the Table IV default).
	ReplLRU ReplPolicy = "lru"
	// ReplSRRIP is static re-reference interval prediction with 2-bit
	// RRPVs (Jaleel et al.), a scan-resistant alternative used by the
	// replacement ablation bench.
	ReplSRRIP ReplPolicy = "srrip"
	// ReplRandom picks victims pseudo-randomly (deterministically seeded).
	ReplRandom ReplPolicy = "random"
)

// Config sizes a cache level.
type Config struct {
	Name    string
	Sets    int
	Ways    int
	Latency uint64 // hit latency in cycles
	MSHRs   int
	// Repl selects the replacement policy; empty means LRU.
	Repl ReplPolicy
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets %d must be a positive power of two", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs %d must be positive", c.Name, c.MSHRs)
	}
	switch c.Repl {
	case "", ReplLRU, ReplSRRIP, ReplRandom:
	default:
		return fmt.Errorf("cache %s: unknown replacement policy %q", c.Name, c.Repl)
	}
	return nil
}

// SizeBytes returns the capacity of the configuration.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * mem.LineSize }

type inflight struct {
	issue       uint64 // cycle the fill request entered this level
	ready       uint64
	prefetch    bool
	pageCross   bool
	filterTag   uint64
	demandMerge bool // a demand access merged while in flight
	leaked      bool // fault injection: the MSHR release for this fill is lost
}

// invalidTag marks an empty way in the packed tag array. No reachable
// physical address produces it: a real tag is PA.LineID() >> log2(sets),
// far below 2^64-1 for any physical memory the simulator can configure.
const invalidTag = ^uint64(0)

// Cache is one physically-tagged cache level.
type Cache struct {
	cfg   Config
	lower Level
	sets  [][]Block
	// tags is the packed struct-of-arrays mirror of each block's tag (one
	// word per way, invalidTag for empty ways): the associative lookup scan
	// reads one contiguous row instead of striding across Block records.
	// fill, Warm and Flush keep it in exact sync with the blocks.
	tags []uint64
	// lrus is the packed replacement state (LRU stamp, or RRPV for SRRIP),
	// one word per way parallel to tags. Victim selection scans this row and
	// the tag row — two contiguous arrays — instead of striding across the
	// full Block records.
	lrus  []uint64
	clock uint64 // monotonic LRU counter
	// setShift is log2(Sets), precomputed: tag extraction runs on every
	// access at every level and must not re-derive it.
	setShift uint
	// lowerWarm is lower pre-asserted to warmable (nil when the lower level
	// cannot warm, e.g. DRAM); Warm cascades misses through it without a
	// per-call type assertion.
	lowerWarm warmable
	rng       uint64 // state for random replacement
	// missLatEWMA tracks the typical demand full-miss latency at this
	// level; the merge-usefulness test compares against it.
	missLatEWMA uint64

	// mshrHist samples MSHR occupancy once per access when the level is
	// registered in a metrics registry; nil (the unregistered state) makes
	// Observe a single branch.
	mshrHist *metrics.Histogram

	// leakEveryN, when non-zero, loses the MSHR release of every Nth
	// completed fill (fault injection: a bookkeeping leak the oracle's
	// leak-freedom invariant must catch).
	leakEveryN uint64
	gcReleases uint64

	outstanding map[uint64]*inflight // line ID → in-flight fill
	// minReady is the exact earliest completion cycle over the non-leaked
	// outstanding fills (^0 when none). gcOutstanding runs on every access;
	// without this bound it iterates the whole MSHR map each time, which
	// profiling shows dominates simulation CPU. With it, the common case —
	// nothing has completed since the last sweep — is one comparison.
	minReady uint64

	// lowReq is the scratch request reused for every forward to the lower
	// level (and writeback forwarding). The hierarchy is driven by a single
	// goroutine per system and the lower level consumes the request
	// synchronously, so reusing one buffer is safe and removes a heap
	// allocation per miss.
	lowReq Request

	// Stats is exported by pointer so the simulator aggregates it directly.
	Stats *stats.CacheStats

	// OnEvict fires when a valid block is evicted.
	OnEvict func(EvictInfo)
	// OnDemandHit fires when a demand access hits a resident block.
	OnDemandHit func(HitInfo)
	// OnDemandMiss fires when a demand access misses entirely (no resident
	// block and no in-flight fill).
	OnDemandMiss func(req *Request)
	// OnFill fires when a block is installed.
	OnFill func(pa mem.PAddr, prefetch, pageCross bool)
}

// New builds a cache on top of lower.
func New(cfg Config, lower Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lower == nil {
		return nil, fmt.Errorf("cache %s: nil lower level", cfg.Name)
	}
	sets := make([][]Block, cfg.Sets)
	blocks := make([]Block, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], blocks = blocks[:cfg.Ways], blocks[cfg.Ways:]
	}
	tags := make([]uint64, cfg.Sets*cfg.Ways)
	for i := range tags {
		tags[i] = invalidTag
	}
	lw, _ := lower.(warmable)
	return &Cache{
		cfg:         cfg,
		lower:       lower,
		lowerWarm:   lw,
		sets:        sets,
		tags:        tags,
		lrus:        make([]uint64, cfg.Sets*cfg.Ways),
		setShift:    uint(log2(cfg.Sets)),
		outstanding: make(map[uint64]*inflight),
		minReady:    ^uint64(0),
		missLatEWMA: 300, // sane prior until real misses calibrate it
		Stats:       &stats.CacheStats{},
	}, nil
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(pa mem.PAddr) uint64 {
	return pa.LineID() & uint64(c.cfg.Sets-1)
}

func (c *Cache) tag(pa mem.PAddr) uint64 {
	return pa.LineID() >> c.setShift
}

func log2(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// findWay scans the packed tag row of one set and returns the way holding
// tag, or -1.
func (c *Cache) findWay(si, tag uint64) int {
	base := si * uint64(c.cfg.Ways)
	for i, k := range c.tags[base : base+uint64(c.cfg.Ways)] {
		if k == tag {
			return i
		}
	}
	return -1
}

// lookup returns the resident block for pa, or nil.
func (c *Cache) lookup(pa mem.PAddr) *Block {
	si := c.setIndex(pa)
	if wi := c.findWay(si, c.tag(pa)); wi >= 0 {
		return &c.sets[si][wi]
	}
	return nil
}

// gcOutstanding retires completed MSHR entries. The minReady watermark makes
// the no-op case (no non-leaked fill has completed yet) a single comparison;
// the set of entries retired is identical to a full sweep, since cycle <
// minReady implies no non-leaked entry satisfies ready <= cycle. Leaked
// entries are excluded from the watermark — they never retire, and tracking
// them would force a full sweep on every access ever after.
func (c *Cache) gcOutstanding(cycle uint64) {
	if cycle < c.minReady {
		return
	}
	min := ^uint64(0)
	for id, fl := range c.outstanding {
		if fl.leaked {
			continue
		}
		if fl.ready <= cycle {
			if n := c.leakEveryN; n > 0 {
				c.gcReleases++
				if c.gcReleases%n == 0 {
					fl.leaked = true // release lost: the entry stays allocated
					continue
				}
			}
			delete(c.outstanding, id)
			continue
		}
		if fl.ready < min {
			min = fl.ready
		}
	}
	c.minReady = min
}

// InjectMSHRLeak makes every Nth MSHR release be lost (0 disables): the
// completed fill's entry stays allocated forever, so occupancy creeps up
// until the leak-freedom invariant trips. Fault injection for the oracle.
func (c *Cache) InjectMSHRLeak(everyN uint64) { c.leakEveryN = everyN }

// MissLatencyEstimate returns the cache's running estimate of a demand
// full-miss latency (EWMA), a diagnostic for timeliness studies.
func (c *Cache) MissLatencyEstimate() uint64 { return c.missLatEWMA }

// OutstandingMisses reports the number of in-flight fills at the given
// cycle; the adaptive thresholding scheme uses it as ROB/L1D pressure input.
func (c *Cache) OutstandingMisses(cycle uint64) int {
	c.gcOutstanding(cycle)
	return len(c.outstanding)
}

// Access implements Level.
func (c *Cache) Access(req *Request, cycle uint64) uint64 {
	ready := c.access(req, cycle)
	if req.Type.IsDemand() && ready > cycle {
		c.Stats.DemandLatencySum += ready - cycle
	}
	return ready
}

func (c *Cache) access(req *Request, cycle uint64) uint64 {
	c.gcOutstanding(cycle)
	c.mshrHist.Observe(uint64(len(c.outstanding)))
	demand := req.Type.IsDemand()
	if demand {
		c.Stats.DemandAccesses++
	}

	if req.Type == mem.Writeback {
		return c.accessWriteback(req, cycle)
	}

	// Resident hit. A block whose fill has not completed yet is an MSHR
	// merge: the access waits for the fill and is accounted as a miss
	// (ChampSim semantics), but usefulness tracking proceeds as for a hit
	// so that late-but-useful prefetches are credited.
	//
	// A block whose fill was ISSUED after this access's cycle is invisible:
	// the simulator processes prefetches eagerly in program order, but a
	// prefetch issued at walk-completion time must not serve (or delay) a
	// demand that arrives before it physically existed. Such a demand
	// misses and fetches independently; the overtaken prefetch is wasted.
	hitSI := c.setIndex(req.PA)
	if wi := c.findWay(hitSI, c.tag(req.PA)); wi >= 0 && cycle >= c.sets[hitSI][wi].issue {
		b := &c.sets[hitSI][wi]
		c.touch(hitSI, wi)
		ready := cycle + c.cfg.Latency
		merged := b.ready > ready
		if merged {
			ready = b.ready
		}
		if demand {
			if merged {
				c.Stats.DemandMisses++
			} else {
				c.Stats.DemandHits++
			}
			first := !b.servedHit
			if b.prefetch && first {
				c.Stats.UsefulPrefetches++
				if b.pageCross {
					c.Stats.PGCUseful++
				}
			}
			b.servedHit = true
			if req.Type == mem.Store {
				b.dirty = true
			}
			if c.OnDemandHit != nil {
				c.OnDemandHit(HitInfo{
					PA: req.PA, VA: req.VA, PC: req.PC,
					Prefetch: b.prefetch, PageCross: b.pageCross,
					FilterTag: b.filterTag, FirstHit: first,
				})
			}
		} else if req.Type == mem.Prefetch {
			c.Stats.PrefetchHits++
		}
		return ready
	}

	// In-flight merge. The block was installed eagerly at miss time, so a
	// demand merging into a prefetch MSHR must update the resident block's
	// usefulness the same way a post-fill hit would (late-but-useful
	// prefetch).
	if fl, ok := c.outstanding[req.PA.LineID()]; ok && cycle >= fl.issue {
		if demand {
			c.Stats.DemandMisses++
			fl.demandMerge = true
			if b := c.lookup(req.PA); b != nil {
				if b.prefetch && !b.servedHit {
					c.Stats.UsefulPrefetches++
					if b.pageCross {
						c.Stats.PGCUseful++
					}
				}
				b.servedHit = true
				if req.Type == mem.Store {
					b.dirty = true
				}
			}
		} else if req.Type == mem.Prefetch {
			c.Stats.PrefetchHits++
		}
		ready := fl.ready
		if min := cycle + c.cfg.Latency; ready < min {
			ready = min
		}
		return ready
	}

	// Full miss.
	if demand {
		c.Stats.DemandMisses++
		if c.OnDemandMiss != nil {
			c.OnDemandMiss(req)
		}
	}
	if req.Type == mem.Prefetch && len(c.outstanding) >= c.cfg.MSHRs {
		// Prefetches are dropped when MSHRs are exhausted.
		c.Stats.MSHRDropPrefetch++
		return cycle
	}
	issue := cycle
	if len(c.outstanding) >= c.cfg.MSHRs {
		c.Stats.MSHRFullWaits++
		// Demand miss with full MSHRs: wait for the earliest completion.
		earliest := ^uint64(0)
		for _, fl := range c.outstanding {
			if fl.ready < earliest {
				earliest = fl.ready
			}
		}
		issue = earliest
		c.gcOutstanding(issue)
	}

	c.lowReq = *req
	ready := c.lower.Access(&c.lowReq, issue+c.cfg.Latency)

	fl := &inflight{
		issue:     issue,
		ready:     ready,
		prefetch:  req.Type == mem.Prefetch,
		pageCross: req.IsPageCross && req.Type == mem.Prefetch,
		filterTag: req.FilterTag,
	}
	if demand {
		fl.demandMerge = true
	}
	c.outstanding[req.PA.LineID()] = fl
	if ready < c.minReady {
		c.minReady = ready
	}
	if demand && ready > cycle {
		c.missLatEWMA = (c.missLatEWMA*7 + (ready - cycle)) / 8
	}
	c.fill(req, fl, issue, ready)
	return ready
}

// touch updates replacement state on a hit.
func (c *Cache) touch(si uint64, wi int) {
	idx := si*uint64(c.cfg.Ways) + uint64(wi)
	switch c.cfg.Repl {
	case ReplSRRIP:
		c.lrus[idx] = 0 // RRPV: re-referenced soon
	case ReplRandom:
		// Random replacement keeps no reuse state.
	default: // LRU
		c.clock++
		c.lrus[idx] = c.clock
	}
}

// victimIn picks the way to replace in set si, per the configured policy.
// Validity comes from the packed tag row (invalidTag marks empty ways), so
// the scan never dereferences the Block records.
func (c *Cache) victimIn(si uint64) int {
	ways := uint64(c.cfg.Ways)
	keys := c.tags[si*ways : si*ways+ways]
	for i, k := range keys {
		if k == invalidTag {
			return i
		}
	}
	return c.victimFull(si)
}

// victimFull picks the replacement victim in set si assuming every way is
// valid (the caller has already checked the tag row for empty ways).
func (c *Cache) victimFull(si uint64) int {
	ways := uint64(c.cfg.Ways)
	lrus := c.lrus[si*ways : si*ways+ways]
	switch c.cfg.Repl {
	case ReplSRRIP:
		// Find an RRPV-3 block, aging the set until one exists.
		for {
			for i, v := range lrus {
				if v >= 3 {
					return i
				}
			}
			for i := range lrus {
				lrus[i]++
			}
		}
	case ReplRandom:
		c.rng = c.rng*6364136223846793005 + 1442695040888963407
		return int((c.rng >> 33) % ways)
	default: // LRU
		victim := 0
		var oldest uint64 = ^uint64(0)
		for i, v := range lrus {
			if v < oldest {
				oldest = v
				victim = i
			}
		}
		return victim
	}
}

// fillStamp is the replacement state of a freshly installed block.
func (c *Cache) fillStamp() uint64 {
	switch c.cfg.Repl {
	case ReplSRRIP:
		return 2 // RRPV: long re-reference interval
	case ReplRandom:
		return 0
	default:
		c.clock++
		return c.clock
	}
}

// fill installs the line, evicting a victim if needed. When the same line
// is already resident (a demand overtook a not-yet-issued prefetch, or vice
// versa), the existing block is replaced in place so a set never holds two
// copies of one tag.
func (c *Cache) fill(req *Request, fl *inflight, issue, ready uint64) {
	si := c.setIndex(req.PA)
	set := c.sets[si]
	tag := c.tag(req.PA)
	wi := c.findWay(si, tag)
	if wi < 0 {
		wi = c.victimIn(si)
	}
	b := &set[wi]
	if b.valid {
		c.evict(b)
	}
	isPrefetch := req.Type == mem.Prefetch
	*b = Block{
		valid:     true,
		dirty:     req.Type == mem.Store,
		pa:        req.PA.Line(),
		tag:       tag,
		issue:     issue,
		ready:     ready,
		prefetch:  isPrefetch,
		pageCross: fl.pageCross,
		servedHit: fl.demandMerge && !isPrefetch,
		filterTag: req.FilterTag,
	}
	c.tags[si*uint64(c.cfg.Ways)+uint64(wi)] = tag
	c.lrus[si*uint64(c.cfg.Ways)+uint64(wi)] = c.fillStamp()
	if isPrefetch {
		c.Stats.PrefetchFills++
		if fl.pageCross {
			c.Stats.PGCIssued++
		}
	}
	if c.OnFill != nil {
		c.OnFill(req.PA, isPrefetch, fl.pageCross)
	}
}

// evict notifies hooks, accounts stats and issues a writeback for dirty data.
func (c *Cache) evict(b *Block) {
	c.Stats.Evictions++
	if b.prefetch && !b.servedHit {
		c.Stats.UselessPrefetches++
		if b.pageCross {
			c.Stats.PGCUseless++
		}
	}
	if b.dirty {
		c.Stats.Writebacks++
	}
	if c.OnEvict != nil {
		c.OnEvict(EvictInfo{
			PA:        b.pa,
			Prefetch:  b.prefetch,
			PageCross: b.pageCross,
			ServedHit: b.servedHit,
			FilterTag: b.filterTag,
			Dirty:     b.dirty,
		})
	}
}

// accessWriteback installs or updates a dirty line without a fill from below.
func (c *Cache) accessWriteback(req *Request, cycle uint64) uint64 {
	if b := c.lookup(req.PA); b != nil {
		b.dirty = true
		return cycle + c.cfg.Latency
	}
	// Non-inclusive hierarchy: writebacks that miss are forwarded down.
	c.lowReq = *req
	return c.lower.Access(&c.lowReq, cycle+c.cfg.Latency)
}

// RegisterMetrics exports the level's statistics block, its MSHR-occupancy
// distribution and its miss-latency estimate into a metrics registry under
// prefix (conventionally the configured name: "l1d", "llc", ...).
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.Stats.RegisterMetrics(r, prefix)
	c.mshrHist = r.MustHistogram(prefix+".mshr_occupancy",
		[]uint64{0, 1, 2, 4, 8, 16, 32, 64, 128})
	r.GaugeFunc(prefix+".miss_latency_ewma", func() uint64 { return c.missLatEWMA })
}

// Contains reports whether the line holding pa is resident (test helper and
// ISO-storage bookkeeping).
func (c *Cache) Contains(pa mem.PAddr) bool { return c.lookup(pa) != nil }

// ServedHit reports whether a resident block has served a demand hit.
func (c *Cache) ServedHit(pa mem.PAddr) (served, resident bool) {
	if b := c.lookup(pa); b != nil {
		return b.servedHit, true
	}
	return false, false
}

// CheckInvariants verifies the level's structural invariants at the given
// cycle and returns the first violation, nil when clean:
//
//   - MSHR leak-freedom: after retiring completed fills, every remaining
//     entry is genuinely in flight (ready > cycle) — a completed fill still
//     occupying an MSHR is a lost release;
//   - MSHR occupancy never exceeds the configured capacity;
//   - no set holds two valid blocks with the same tag, and every block's
//     recorded address maps back to the set and tag it sits under;
//   - block fill timestamps are ordered (issue ≤ ready).
//
// It calls the same lazy gc every access path runs, so checking is
// semantically invisible to the timing model.
func (c *Cache) CheckInvariants(cycle uint64) error {
	c.gcOutstanding(cycle)
	if got := len(c.outstanding); got > c.cfg.MSHRs {
		return fmt.Errorf("mshr-overflow: %s holds %d in-flight fills with %d MSHRs", c.cfg.Name, got, c.cfg.MSHRs)
	}
	for id, fl := range c.outstanding {
		if fl.ready <= cycle {
			return fmt.Errorf("mshr-leak: %s line %#x completed at cycle %d but still occupies an MSHR at cycle %d", c.cfg.Name, id, fl.ready, cycle)
		}
		if fl.issue > fl.ready {
			return fmt.Errorf("mshr-time-order: %s line %#x issued at %d after its ready cycle %d", c.cfg.Name, id, fl.issue, fl.ready)
		}
	}
	for si := range c.sets {
		set := c.sets[si]
		for wi := range set {
			b := &set[wi]
			mirror := c.tags[uint64(si)*uint64(c.cfg.Ways)+uint64(wi)]
			if !b.valid {
				if mirror != invalidTag {
					return fmt.Errorf("tag-desync: %s set %d way %d invalid but packed tag %#x", c.cfg.Name, si, wi, mirror)
				}
				continue
			}
			if mirror != b.tag {
				return fmt.Errorf("tag-desync: %s set %d way %d holds tag %#x but packed tag %#x", c.cfg.Name, si, wi, b.tag, mirror)
			}
			if int(c.setIndex(b.pa)) != si || c.tag(b.pa) != b.tag {
				return fmt.Errorf("block-misplaced: %s block pa %#x stored in set %d tag %#x, address maps to set %d tag %#x",
					c.cfg.Name, b.pa, si, b.tag, c.setIndex(b.pa), c.tag(b.pa))
			}
			if b.issue > b.ready {
				return fmt.Errorf("block-time-order: %s block pa %#x issue %d > ready %d", c.cfg.Name, b.pa, b.issue, b.ready)
			}
			for wj := wi + 1; wj < len(set); wj++ {
				if set[wj].valid && set[wj].tag == b.tag {
					return fmt.Errorf("duplicate-tag: %s set %d holds tag %#x twice (pa %#x)", c.cfg.Name, si, b.tag, b.pa)
				}
			}
		}
	}
	return nil
}

// Flush invalidates all blocks, firing eviction hooks. Used when a core
// finishes its trace in multi-core replay.
func (c *Cache) Flush() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			b := &c.sets[si][wi]
			if b.valid {
				c.evict(b)
				b.valid = false
			}
		}
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.lrus[i] = 0
	}
	c.outstanding = make(map[uint64]*inflight)
	c.minReady = ^uint64(0)
}

// warmable is the optional functional-warm interface of a lower level; the
// cascade stops at levels that do not implement it (the DRAM controller,
// fault-injection wrappers).
type warmable interface {
	Warm(pa mem.PAddr, store bool)
}

// Warm performs a functional access: residency, replacement state and dirty
// bits update exactly as a demand access would update them, but no
// statistics move, no hooks fire, no MSHR is allocated and no timing is
// modelled. Misses install the line immediately and cascade the warm access
// into the lower level (when it is itself a cache), so a functional-warmup
// gap leaves the whole hierarchy's residency state where detailed execution
// would have left it. Dirty victims are warm-written to the lower level to
// preserve its residency too; prefetch/PCB metadata of victims is dropped
// silently (the measurement counters are frozen during gaps by design).
func (c *Cache) Warm(pa mem.PAddr, store bool) {
	si := c.setIndex(pa)
	tag := c.tag(pa)
	// One fused pass over the tag row finds a resident hit and the first
	// empty way together; misses in a full set fall through to the policy
	// victim scan. Warm traffic is overwhelmingly full-hierarchy misses
	// (the gap's new working set), so saving the second row traversal per
	// level is a measurable share of functional-warmup time.
	ways := uint64(c.cfg.Ways)
	inv := -1
	for i, k := range c.tags[si*ways : si*ways+ways] {
		if k == tag {
			b := &c.sets[si][i]
			c.touch(si, i)
			if store {
				b.dirty = true
			}
			b.servedHit = true
			return
		}
		if k == invalidTag && inv < 0 {
			inv = i
		}
	}
	set := c.sets[si]
	wi := inv
	if wi < 0 {
		wi = c.victimFull(si)
	}
	b := &set[wi]
	if b.valid && b.dirty && c.lowerWarm != nil {
		c.lowerWarm.Warm(b.pa, true)
	}
	*b = Block{
		valid:     true,
		dirty:     store,
		pa:        pa.Line(),
		tag:       tag,
		servedHit: true,
	}
	c.tags[si*uint64(c.cfg.Ways)+uint64(wi)] = tag
	c.lrus[si*uint64(c.cfg.Ways)+uint64(wi)] = c.fillStamp()
	if c.lowerWarm != nil {
		c.lowerWarm.Warm(pa, false)
	}
}
