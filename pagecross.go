// Package pagecross is a from-scratch reproduction of "To Cross, or Not to
// Cross Pages for Prefetching?" (HPCA 2025): the MOKA framework for
// building Page-Cross Filters, the DRIPPER filter prototype, the three L1D
// prefetchers the paper evaluates (Berti, IPCP, BOP), and the trace-driven
// out-of-order simulator (caches, TLBs, page-table walker, DRAM) the
// evaluation runs on.
//
// # Quick start
//
//	cfg := pagecross.DefaultConfig()
//	cfg.L1DPrefetcher = "berti"
//	cfg.Policy = pagecross.PolicyDripper
//	w, _ := pagecross.WorkloadByName("gap.graph_s00")
//	run, err := pagecross.Run(cfg, w)
//	fmt.Println(run.IPC())
//
// # Layers
//
//   - The simulator: Config/Run/RunMix simulate single- and multi-core
//     systems over synthetic workloads (SeenWorkloads, UnseenWorkloads).
//   - The paper's mechanism: FilterConfig/NewFilter build MOKA filters from
//     program and system features; DripperConfig returns the Table II
//     prototypes; SelectFeatures reruns the offline selection of §III-D3.
//   - The evaluation: the experiments subcommands of cmd/experiments and
//     the benchmarks in bench_test.go regenerate every table and figure.
package pagecross

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes a simulated system (core, caches, TLBs, DRAM,
// prefetchers and page-cross policy).
type Config = sim.Config

// MultiConfig describes a multi-core system sharing LLC and DRAM.
type MultiConfig = sim.MultiConfig

// PolicyKind names a page-cross prefetching policy.
type PolicyKind = sim.PolicyKind

// The policies of §V-A.
const (
	PolicyPermit     = sim.PolicyPermit
	PolicyDiscard    = sim.PolicyDiscard
	PolicyDiscardPTW = sim.PolicyDiscardPTW
	PolicyDripper    = sim.PolicyDripper
	PolicyPPF        = sim.PolicyPPF
	PolicyPPFDthr    = sim.PolicyPPFDthr
	PolicyDripperSF  = sim.PolicyDripperSF
)

// Result aggregates one run's statistics (IPC, MPKIs, prefetch usefulness,
// page-walk counts).
type Result = stats.Run

// Workload is one named benchmark of the evaluation set.
type Workload = trace.Workload

// FilterConfig assembles a Page-Cross Filter from MOKA's feature bouquet.
type FilterConfig = core.Config

// Filter is an instantiated Page-Cross Filter.
type Filter = core.Filter

// FilterInput is the program context of one page-cross decision.
type FilterInput = core.Input

// SystemState is the per-epoch snapshot consumed by system features and the
// adaptive thresholding scheme.
type SystemState = core.SystemState

// DefaultConfig returns the paper's Table IV single-core system with Berti
// at the L1D and the Discard-PGC policy.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultMultiConfig returns the Table IV 8-core system.
func DefaultMultiConfig() MultiConfig { return sim.DefaultMultiConfig() }

// Run simulates one workload on a fresh system built from cfg: warmup for
// cfg.WarmupInstrs, then measure cfg.SimInstrs instructions.
func Run(cfg Config, w Workload) (*Result, error) { return sim.RunWorkload(cfg, w) }

// RunMix simulates a multi-programmed mix (workload i on core i) and
// returns one Result per core.
func RunMix(cfg MultiConfig, mix []Workload) ([]*Result, error) {
	ms, err := sim.NewMulti(cfg)
	if err != nil {
		return nil, err
	}
	return ms.RunMix(mix)
}

// SeenWorkloads returns the 218 workloads used during DRIPPER's design.
func SeenWorkloads() []Workload { return trace.Seen() }

// UnseenWorkloads returns the 178 held-out workloads of §V-B8.
func UnseenWorkloads() []Workload { return trace.Unseen() }

// NonIntensiveWorkloads returns the non-memory-intensive set of §V-B9.
func NonIntensiveWorkloads() []Workload { return trace.NonIntensive() }

// WorkloadByName finds a workload in any set.
func WorkloadByName(name string) (Workload, bool) { return trace.ByName(name) }

// Mixes returns n deterministic multi-core mixes drawn from the seen set.
func Mixes(n, cores int) [][]Workload { return trace.Mixes(n, cores) }

// DripperConfig returns the Table II DRIPPER configuration for "berti",
// "ipcp" or "bop".
func DripperConfig(prefetcher string) FilterConfig {
	return core.DefaultDripperConfig(prefetcher)
}

// NewFilter instantiates a Page-Cross Filter from a MOKA configuration.
func NewFilter(cfg FilterConfig) (*Filter, error) { return core.NewFilter(cfg) }

// ProgramFeatures lists MOKA's program-feature bouquet (Table I).
func ProgramFeatures() []string { return core.ProgramFeatureNames() }

// SystemFeatures lists MOKA's system features (Table I).
func SystemFeatures() []string { return core.SystemFeatureNames() }

// FilterSnapshot is the serialisable learned state of a filter, for the
// train-offline / deploy-pretrained workflow.
type FilterSnapshot = core.FilterSnapshot

// DecodeFilterSnapshot deserialises snapshot bytes produced by
// (*FilterSnapshot).Encode.
func DecodeFilterSnapshot(data []byte) (*FilterSnapshot, error) {
	return core.DecodeFilterSnapshot(data)
}

// SelectFeatures reruns the paper's offline greedy feature selection
// (§III-D3): eval scores a candidate configuration (geomean IPC speedup in
// the paper); minGain is the adoption threshold (the paper uses 0.003).
func SelectFeatures(base FilterConfig, candidates []string, minGain float64,
	eval func(FilterConfig) (float64, error)) (*core.SelectionResult, error) {
	return core.SelectFeatures(base, candidates, minGain, eval)
}

// Speedup returns run IPC / baseline IPC.
func Speedup(run, baseline *Result) float64 { return stats.Speedup(run, baseline) }

// Geomean returns the geometric mean of positive values.
func Geomean(xs []float64) (float64, error) { return stats.Geomean(xs) }

// WeightedGeomean returns the weighted geometric mean.
func WeightedGeomean(xs, weights []float64) (float64, error) {
	return stats.WeightedGeomean(xs, weights)
}
